//===- icfg_test.cpp - Interprocedural CFG tests ----------------*- C++ -*-===//

#include "TestUtil.h"

#include "ir/ICFG.h"

using namespace vsfs;
using namespace vsfs::test;

namespace {

ir::InstID findInst(const ir::Module &M, ir::InstKind Kind,
                    const std::string &FunName) {
  ir::FunID F = M.lookupFunction(FunName);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == Kind && M.inst(I).Parent == F)
      return I;
  ADD_FAILURE() << "no such instruction in " << FunName;
  return ir::InvalidInst;
}

bool hasEdge(const ir::ICFG &G, ir::InstID From, ir::InstID To) {
  for (ir::InstID S : G.successors(From))
    if (S == To)
      return true;
  return false;
}

} // namespace

TEST(ICFG, StraightLineChain) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = copy %a
      ret %b
    }
  )");
  ir::ICFG G(Ctx->module(), nullptr);
  const ir::Module &M = Ctx->module();
  const ir::Function &Main = M.function(M.main());
  // FunEntry -> alloc -> copy -> FunExit, one edge each.
  ir::InstID Alloc = findInst(M, ir::InstKind::Alloc, "main");
  ir::InstID Copy = findInst(M, ir::InstKind::Copy, "main");
  EXPECT_TRUE(hasEdge(G, Main.Entry, Alloc));
  EXPECT_TRUE(hasEdge(G, Alloc, Copy));
  EXPECT_TRUE(hasEdge(G, Copy, Main.Exit));
  EXPECT_TRUE(G.successors(Main.Exit).empty());
}

TEST(ICFG, BranchesFanOutAndLookThroughEmptyBlocks) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      br l, r
    l:
      br join      ; empty block: looked through
    r:
      %b = copy %a
      br join
    join:
      %c = phi %a, %b
      ret %c
    }
  )");
  ir::ICFG G(Ctx->module(), nullptr);
  const ir::Module &M = Ctx->module();
  ir::InstID Alloc = findInst(M, ir::InstKind::Alloc, "main");
  ir::InstID Copy = findInst(M, ir::InstKind::Copy, "main");
  ir::InstID Phi = findInst(M, ir::InstKind::Phi, "main");
  // The branch reaches both the copy (block r) and, through empty block l,
  // the phi directly.
  EXPECT_TRUE(hasEdge(G, Alloc, Copy));
  EXPECT_TRUE(hasEdge(G, Alloc, Phi));
  EXPECT_TRUE(hasEdge(G, Copy, Phi));
}

TEST(ICFG, CallsRouteThroughResolvedCallees) {
  auto Ctx = buildFromText(R"(
    func @callee(%x) {
    entry:
      ret %x
    }
    func @main() {
    entry:
      %a = alloc
      %r = call @callee(%a)
      %c = copy %r
      ret %c
    }
  )");
  const ir::Module &M = Ctx->module();
  ir::ICFG G(M, [&](ir::InstID CS) {
    return Ctx->andersen().callGraph().callees(CS);
  });
  ir::InstID Call = findInst(M, ir::InstKind::Call, "main");
  ir::InstID Copy = findInst(M, ir::InstKind::Copy, "main");
  const ir::Function &Callee = M.function(M.lookupFunction("callee"));
  // call -> callee entry; callee exit -> return site (the copy);
  // and no fall-through around the callee.
  EXPECT_TRUE(hasEdge(G, Call, Callee.Entry));
  EXPECT_TRUE(hasEdge(G, Callee.Exit, Copy));
  EXPECT_FALSE(hasEdge(G, Call, Copy));
}

TEST(ICFG, UnresolvedCallsFallThrough) {
  auto Ctx = buildFromText(R"(
    func @callee(%x) {
    entry:
      ret %x
    }
    func @main() {
    entry:
      %a = alloc
      %r = call @callee(%a)
      %c = copy %r
      ret %c
    }
  )");
  const ir::Module &M = Ctx->module();
  ir::ICFG G(M, nullptr); // No resolver: every call falls through.
  ir::InstID Call = findInst(M, ir::InstKind::Call, "main");
  ir::InstID Copy = findInst(M, ir::InstKind::Copy, "main");
  EXPECT_TRUE(hasEdge(G, Call, Copy));
}

TEST(ICFG, UnreachableBlocksExcluded) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      br done
    orphan:
      %b = copy %a
      ret %b
    done:
      ret %a
    }
  )");
  const ir::Module &M = Ctx->module();
  ir::ICFG G(M, nullptr);
  ir::InstID Copy = findInst(M, ir::InstKind::Copy, "main");
  EXPECT_FALSE(G.isReachableInFunction(Copy));
  EXPECT_TRUE(G.successors(Copy).empty());
  ir::InstID Alloc = findInst(M, ir::InstKind::Alloc, "main");
  EXPECT_TRUE(G.isReachableInFunction(Alloc));
}

TEST(ICFG, PredecessorsInvertSuccessors) {
  workload::GenConfig C;
  C.Seed = 17;
  C.NumFunctions = 5;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  const ir::Module &M = Ctx->module();
  ir::ICFG G(M, [&](ir::InstID CS) {
    return Ctx->andersen().callGraph().callees(CS);
  });
  uint64_t Forward = 0, Backward = 0;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    Forward += G.successors(I).size();
    Backward += G.predecessors(I).size();
    for (ir::InstID S : G.successors(I)) {
      bool Found = false;
      for (ir::InstID P : G.predecessors(S))
        Found |= P == I;
      EXPECT_TRUE(Found);
    }
  }
  EXPECT_EQ(Forward, Backward);
  EXPECT_EQ(Forward, G.numEdges());
}

TEST(ICFG, ReachableFromProgramEntry) {
  auto Ctx = buildFromText(R"(
    global @g = @x
    global @x
    func @unused() {
    entry:
      ret
    }
    func @main() {
    entry:
      %v = load @g
      ret %v
    }
  )");
  const ir::Module &M = Ctx->module();
  ir::ICFG G(M, [&](ir::InstID CS) {
    return Ctx->andersen().callGraph().callees(CS);
  });
  ir::FunID Entry = ir::programEntry(M);
  auto Reach = G.reachableFrom(M.function(Entry).Entry);
  std::set<ir::InstID> Set(Reach.begin(), Reach.end());
  // main is reached via the init call; @unused is not.
  EXPECT_TRUE(Set.count(M.function(M.main()).Entry));
  EXPECT_FALSE(Set.count(M.function(M.lookupFunction("unused")).Entry));
}
