//===- flowsensitive_test.cpp - SFS baseline tests --------------*- C++ -*-===//

#include "TestUtil.h"

using namespace vsfs;
using namespace vsfs::test;
using core::FlowSensitive;

TEST(FlowSensitive, StrongUpdateSeparatesStores) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc
      store %a -> %p
      %x = load %p
      store %b -> %p
      %y = load %p
      ret %y
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  // Flow-sensitivity with strong updates: x sees only a, y only b.
  EXPECT_EQ(pointees(M, SFS, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(M, SFS, "y"), (std::set<std::string>{"b.obj"}));
}

TEST(FlowSensitive, WeakUpdateOnNonSingleton) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc [weak]     ; not a singleton: no strong updates
      store %a -> %p
      %x = load %p
      store %b -> %p
      %y = load %p
      ret %y
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, SFS, "x"), (std::set<std::string>{"a.obj"}));
  // Weak update: the second store accumulates.
  EXPECT_EQ(pointees(M, SFS, "y"),
            (std::set<std::string>{"a.obj", "b.obj"}));
}

TEST(FlowSensitive, WeakUpdateWhenPointerAmbiguous) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %o1 = alloc
      %o2 = alloc
      br l, r
    l:
      br join
    r:
      br join
    join:
      %p = phi %o1, %o2   ; pt(p) = {o1, o2}: no strong update possible
      store %a -> %o1
      store %b -> %p
      %x = load %o1
      ret %x
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  // The ambiguous store may or may not write o1: both values remain.
  EXPECT_EQ(pointees(M, SFS, "x"),
            (std::set<std::string>{"a.obj", "b.obj"}));
}

TEST(FlowSensitive, ControlFlowMergeUnionsValues) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc
      br l, r
    l:
      store %a -> %p
      br join
    r:
      store %b -> %p
      br join
    join:
      %x = load %p
      ret %x
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  EXPECT_EQ(pointees(Ctx->module(), SFS, "x"),
            (std::set<std::string>{"a.obj", "b.obj"}));
}

TEST(FlowSensitive, MorePreciseThanAndersen) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc
      store %a -> %p
      %x = load %p
      store %b -> %p
      ret %x
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  ir::VarID X = findVar(M, "x");
  // Andersen merges both stores; SFS orders them.
  EXPECT_EQ(pointeeNames(M, Ctx->andersen().ptsOfVar(X)),
            (std::set<std::string>{"a.obj", "b.obj"}));
  EXPECT_EQ(pointeeNames(M, SFS.ptsOfVar(X)),
            (std::set<std::string>{"a.obj"}));
}

TEST(FlowSensitive, InterproceduralFlow) {
  auto Ctx = buildFromText(R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      call @writer(%a)
      %x = load @g
      ret %x
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  EXPECT_EQ(pointees(Ctx->module(), SFS, "x"),
            (std::set<std::string>{"a.obj"}));
}

TEST(FlowSensitive, GlobalInitializationReachesMain) {
  auto Ctx = buildFromText(R"(
    global @g = @x
    global @x
    func @main() {
    entry:
      %p = load @g
      ret %p
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  EXPECT_EQ(pointees(Ctx->module(), SFS, "p"),
            (std::set<std::string>{"x"}));
}

TEST(FlowSensitive, OnTheFlyCallGraphIsMorePrecise) {
  // A function-pointer slot is overwritten before the call: flow-sensitive
  // resolution sees only the final target; Andersen sees both.
  auto Ctx = buildFromText(R"(
    global @fp
    func @f(%x) {
    entry:
      %fo = alloc
      ret %fo
    }
    func @g(%y) {
    entry:
      %go = alloc
      ret %go
    }
    func @main() {
    entry:
      %pf = funcaddr @f
      %pg = funcaddr @g
      store %pf -> @fp
      store %pg -> @fp
      %callee = load @fp
      %r = call %callee()
      ret %r
    }
  )");
  auto &M = Ctx->module();
  // Andersen resolves the call to both targets.
  ir::InstID CallI = ir::InvalidInst;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == ir::InstKind::Call &&
        M.inst(I).Parent == M.main() && M.inst(I).isIndirectCall())
      CallI = I;
  ASSERT_NE(CallI, ir::InvalidInst);
  EXPECT_EQ(Ctx->andersen().callGraph().callees(CallI).size(), 2u);

  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  // Strong updates on the singleton global slot leave only @g.
  EXPECT_EQ(SFS.callGraph().callees(CallI).size(), 1u);
  EXPECT_EQ(SFS.callGraph().callees(CallI)[0], M.lookupFunction("g"));
  EXPECT_EQ(pointees(M, SFS, "r"), (std::set<std::string>{"go.obj"}));
}

TEST(FlowSensitive, AuxCallGraphModeMatchesAndersenResolution) {
  const char *Prog = R"(
    global @fp = @f
    func @f(%x) {
    entry:
      %fo = alloc
      ret %fo
    }
    func @main() {
    entry:
      %callee = load @fp
      %r = call %callee()
      ret %r
    }
  )";
  auto Ctx = buildFromText(Prog, /*ConnectAuxIndirectCalls=*/true);
  FlowSensitive::Options Opts;
  Opts.OnTheFlyCallGraph = false;
  FlowSensitive SFS(Ctx->svfg(), Opts);
  SFS.solve();
  EXPECT_EQ(pointees(Ctx->module(), SFS, "r"),
            (std::set<std::string>{"fo.obj"}));
}

TEST(FlowSensitive, RecursiveFunctions) {
  auto Ctx = buildFromText(R"(
    global @acc
    func @rec(%n) {
    entry:
      store %n -> @acc
      br stop, go
    go:
      %l = alloc
      %r = call @rec(%l)
      ret %r
    stop:
      ret %n
    }
    func @main() {
    entry:
      %a = alloc
      %v = call @rec(%a)
      %w = load @acc
      ret %v
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, SFS, "v"),
            (std::set<std::string>{"a.obj", "l.obj"}));
  EXPECT_EQ(pointees(M, SFS, "w"),
            (std::set<std::string>{"a.obj", "l.obj"}));
}

TEST(FlowSensitive, FieldsTrackedSeparately) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %s = alloc [fields=2]
      %a = alloc
      %b = alloc
      %f1 = field %s, 1
      store %a -> %s        ; writes field 0
      store %b -> %f1       ; writes field 1
      %x = load %s
      %y = load %f1
      ret %x
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, SFS, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(M, SFS, "y"), (std::set<std::string>{"b.obj"}));
}

TEST(FlowSensitive, LoopAccumulatesWeakly) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %p = alloc [weak]
      %seed = alloc
      store %seed -> %p
      br loop
    loop:
      %v = load %p
      %n = alloc [heap]
      store %n -> %p
      br loop, out
    out:
      %final = load %p
      ret %final
    }
  )");
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, SFS, "final"),
            (std::set<std::string>{"n.obj", "seed.obj"}));
  EXPECT_EQ(pointees(M, SFS, "v"),
            (std::set<std::string>{"n.obj", "seed.obj"}));
}

TEST(FlowSensitive, StatsAndStorageCounters) {
  workload::GenConfig C;
  C.Seed = 3;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  EXPECT_GT(SFS.numPtsSetsStored(), 0u);
  EXPECT_GT(SFS.stats().lookup("node-visits"), 0u);
  EXPECT_GT(SFS.stats().lookup("propagations"), 0u);
}
