//===- andersen_test.cpp - Andersen's analysis tests ------------*- C++ -*-===//

#include "TestUtil.h"

#include "andersen/Andersen.h"

using namespace vsfs;
using namespace vsfs::test;

namespace {

/// Parses, verifies, solves Andersen; the context keeps everything alive.
std::unique_ptr<core::AnalysisContext> solve(const char *Text) {
  auto Ctx = buildFromText(Text);
  return Ctx;
}

} // namespace

TEST(Andersen, AddressOfAndCopy) {
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %a = alloc
      %b = copy %a
      %c = copy %b
      ret %c
    }
  )");
  auto &M = Ctx->module();
  auto &A = Ctx->andersen();
  EXPECT_EQ(pointeeNames(M, A.ptsOfVar(findVar(M, "a"))),
            (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointeeNames(M, A.ptsOfVar(findVar(M, "c"))),
            (std::set<std::string>{"a.obj"}));
}

TEST(Andersen, PhiMergesSources) {
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      br l, r
    l:
      br join
    r:
      br join
    join:
      %m = phi %a, %b
      ret %m
    }
  )");
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "m"),
            (std::set<std::string>{"a.obj", "b.obj"}));
}

TEST(Andersen, LoadStoreThroughPointer) {
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %x = alloc
      %p = alloc
      store %x -> %p
      %y = load %p
      ret %y
    }
  )");
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "y"),
            (std::set<std::string>{"x.obj"}));
  // The pointed-to object's own points-to set records x.obj.
  auto &M = Ctx->module();
  ir::ObjID PObj = ir::InvalidObj;
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    if (M.symbols().object(O).Name == "p.obj")
      PObj = O;
  ASSERT_NE(PObj, ir::InvalidObj);
  EXPECT_EQ(pointeeNames(M, Ctx->andersen().ptsOfObj(PObj)),
            (std::set<std::string>{"x.obj"}));
}

TEST(Andersen, FlowInsensitiveMergesAllStores) {
  // Unlike the flow-sensitive analyses, Andersen sees both stores at once.
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc
      store %a -> %p
      %x = load %p
      store %b -> %p
      %y = load %p
      ret %y
    }
  )");
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "x"),
            (std::set<std::string>{"a.obj", "b.obj"}));
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "y"),
            (std::set<std::string>{"a.obj", "b.obj"}));
}

TEST(Andersen, FieldSensitivity) {
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %s = alloc [fields=3]
      %a = alloc
      %b = alloc
      %f1 = field %s, 1
      %f2 = field %s, 2
      store %a -> %f1
      store %b -> %f2
      %x = load %f1
      %y = load %f2
      ret %x
    }
  )");
  // Distinct fields keep distinct contents.
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "x"),
            (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "y"),
            (std::set<std::string>{"b.obj"}));
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "f1"),
            (std::set<std::string>{"s.obj.f1"}));
}

TEST(Andersen, DirectCallsBindParamsAndReturns) {
  auto Ctx = solve(R"(
    func @id(%x) {
    entry:
      ret %x
    }
    func @main() {
    entry:
      %a = alloc
      %r = call @id(%a)
      ret %r
    }
  )");
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "r"),
            (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "x"),
            (std::set<std::string>{"a.obj"}));
}

TEST(Andersen, IndirectCallsResolveOnTheFly) {
  auto Ctx = solve(R"(
    func @f(%x) {
    entry:
      ret %x
    }
    func @g(%y) {
    entry:
      %o = alloc
      ret %o
    }
    func @main() {
    entry:
      %a = alloc
      %fp = funcaddr @f
      %r = call %fp(%a)
      ret %r
    }
  )");
  auto &M = Ctx->module();
  auto &A = Ctx->andersen();
  // Only @f is a target; @g's param never receives a.obj.
  EXPECT_EQ(pointees(M, A, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(M, A, "y"), (std::set<std::string>{}));
  EXPECT_EQ(pointees(M, A, "r"), (std::set<std::string>{"a.obj"}));
  // The call graph has the resolved edge.
  ir::FunID F = M.lookupFunction("f");
  EXPECT_EQ(A.callGraph().callers(F).size(), 1u);
}

TEST(Andersen, FunctionPointerTableViaGlobal) {
  auto Ctx = solve(R"(
    global @table = @f, @g
    func @f(%x) {
    entry:
      %fo = alloc
      ret %fo
    }
    func @g(%y) {
    entry:
      %go = alloc
      ret %go
    }
    func @main() {
    entry:
      %fp = load @table
      %r = call %fp()
      ret %r
    }
  )");
  auto &M = Ctx->module();
  auto &A = Ctx->andersen();
  // Both functions are possible targets; the result merges both returns.
  EXPECT_EQ(pointees(M, A, "r"),
            (std::set<std::string>{"fo.obj", "go.obj"}));
}

TEST(Andersen, CopyCyclesCollapse) {
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %a = alloc
      br loop
    loop:
      %x = phi %a, %z
      %y = copy %x
      %z = copy %y
      br loop, done
    done:
      ret %z
    }
  )");
  auto &M = Ctx->module();
  auto &A = Ctx->andersen();
  for (const char *Name : {"x", "y", "z"})
    EXPECT_EQ(pointees(M, A, Name), (std::set<std::string>{"a.obj"}));
  EXPECT_GE(A.stats().lookup("nodes-collapsed"), 1u);
}

TEST(Andersen, RecursionTerminates) {
  auto Ctx = solve(R"(
    func @rec(%n) {
    entry:
      %l = alloc
      br stop, go
    go:
      %r = call @rec(%l)
      ret %r
    stop:
      ret %n
    }
    func @main() {
    entry:
      %a = alloc
      %v = call @rec(%a)
      ret %v
    }
  )");
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "v"),
            (std::set<std::string>{"a.obj", "l.obj"}));
}

TEST(Andersen, GlobalInitializersFlow) {
  auto Ctx = solve(R"(
    global @g = @x
    global @x
    func @main() {
    entry:
      %p = load @g
      ret %p
    }
  )");
  EXPECT_EQ(pointees(Ctx->module(), Ctx->andersen(), "p"),
            (std::set<std::string>{"x"}));
}

TEST(Andersen, SolveIsIdempotent) {
  auto Ctx = solve(R"(
    func @main() {
    entry:
      %a = alloc
      ret %a
    }
  )");
  auto &A = Ctx->andersen();
  PointsTo Before = A.ptsOfVar(findVar(Ctx->module(), "a"));
  A.solve();
  EXPECT_EQ(A.ptsOfVar(findVar(Ctx->module(), "a")), Before);
}

TEST(Andersen, SoundOnGeneratedPrograms) {
  // Every flow-sensitive fact must be derivable flow-insensitively; here we
  // sanity check the generator output solves and produces a call graph.
  workload::GenConfig C;
  C.Seed = 7;
  C.NumFunctions = 10;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  EXPECT_GT(Ctx->andersen().callGraph().numEdges(), 0u);
  EXPECT_GT(Ctx->andersen().stats().lookup("copy-edges"), 0u);
}
