//===- equivalence_test.cpp - The paper's precision theorem -----*- C++ -*-===//
///
/// §IV-E: VSFS produces exactly SFS's points-to results. This is the
/// central correctness property of the reproduction, checked here over many
/// generated programs in both call-graph modes, together with:
///
///  - staging soundness: flow-sensitive results refine Andersen's;
///  - the dense-oracle check: on intraprocedural programs the classic
///    ICFG data-flow analysis (§IV-A) computes the same solution as SFS;
///  - call-graph agreement between SFS and VSFS;
///  - on-the-fly resolution never being less precise than reusing the
///    auxiliary call graph.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace vsfs;
using namespace vsfs::test;
using core::FlowSensitive;
using core::IterativeFlowSensitive;
using core::VersionedFlowSensitive;

namespace {

workload::GenConfig configForSeed(uint32_t Seed) {
  workload::GenConfig C;
  C.Seed = Seed;
  C.NumFunctions = 3 + Seed % 9;
  C.BlocksPerFunction = 2 + Seed % 5;
  C.InstsPerBlock = 3 + Seed % 6;
  C.NumGlobals = Seed % 10;
  C.HeapFraction = (Seed % 4) * 0.25;
  C.IndirectCallFraction = (Seed % 5) * 0.2;
  return C;
}

/// Compares every variable's points-to set; reports the first mismatch.
void expectSamePointsTo(const ir::Module &M,
                        const core::PointerAnalysisResult &A,
                        const core::PointerAnalysisResult &B,
                        const char *What) {
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    if (A.ptsOfVar(V) == B.ptsOfVar(V))
      continue;
    ADD_FAILURE() << What << ": mismatch at " << ir::printVar(M, V)
                  << "\n  first:  "
                  << ::testing::PrintToString(pointeeNames(M, A.ptsOfVar(V)))
                  << "\n  second: "
                  << ::testing::PrintToString(pointeeNames(M, B.ptsOfVar(V)));
    return;
  }
}

} // namespace

class EquivalenceProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EquivalenceProperty, VsfsEqualsSfsWithOnTheFlyCallGraph) {
  auto Ctx = buildFromConfig(configForSeed(GetParam()));
  ASSERT_NE(Ctx, nullptr);
  auto &M = Ctx->module();

  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();

  expectSamePointsTo(M, SFS, VSFS, "VSFS vs SFS (OTF)");
  // Same resolved call graph, edge for edge.
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Kind != ir::InstKind::Call)
      continue;
    auto A = SFS.callGraph().callees(I);
    auto B = VSFS.callGraph().callees(I);
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    EXPECT_EQ(A, B) << "call graphs diverge at callsite " << I;
  }
}

TEST_P(EquivalenceProperty, VsfsEqualsSfsWithAuxiliaryCallGraph) {
  auto Ctx = buildFromConfig(configForSeed(GetParam()),
                             /*ConnectAuxIndirectCalls=*/true);
  ASSERT_NE(Ctx, nullptr);
  FlowSensitive::Options SO;
  SO.OnTheFlyCallGraph = false;
  FlowSensitive SFS(Ctx->svfg(), SO);
  SFS.solve();
  VersionedFlowSensitive::Options VO;
  VO.OnTheFlyCallGraph = false;
  VersionedFlowSensitive VSFS(Ctx->svfg(), VO);
  VSFS.solve();
  expectSamePointsTo(Ctx->module(), SFS, VSFS, "VSFS vs SFS (aux CG)");
}

TEST_P(EquivalenceProperty, StagingRefinesAndersen) {
  auto Ctx = buildFromConfig(configForSeed(GetParam()));
  ASSERT_NE(Ctx, nullptr);
  auto &M = Ctx->module();
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    EXPECT_TRUE(Ctx->andersen().ptsOfVar(V).contains(SFS.ptsOfVar(V)))
        << "flow-sensitive result exceeds the auxiliary analysis at "
        << ir::printVar(M, V);
}

TEST_P(EquivalenceProperty, OnTheFlyNeverLessPreciseThanAux) {
  // OTF resolves a subset of the auxiliary call graph, so its points-to
  // results must be a subset too.
  auto CtxA = buildFromConfig(configForSeed(GetParam()),
                              /*ConnectAuxIndirectCalls=*/true);
  ASSERT_NE(CtxA, nullptr);
  FlowSensitive::Options AuxOpts;
  AuxOpts.OnTheFlyCallGraph = false;
  FlowSensitive AuxSFS(CtxA->svfg(), AuxOpts);
  AuxSFS.solve();

  auto CtxB = buildFromConfig(configForSeed(GetParam()));
  ASSERT_NE(CtxB, nullptr);
  FlowSensitive OTF(CtxB->svfg());
  OTF.solve();

  auto &M = CtxB->module();
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    EXPECT_TRUE(AuxSFS.ptsOfVar(V).contains(OTF.ptsOfVar(V)))
        << "OTF result exceeds aux-call-graph result at "
        << ir::printVar(M, V);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Range(1u, 41u));

class OracleProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OracleProperty, DenseAnalysisMatchesSfsIntraprocedurally) {
  // On call-free programs the SVFG-staged analysis must compute exactly
  // the classic ICFG data-flow solution (§IV-A): same least fixed point.
  workload::GenConfig C;
  C.Seed = GetParam();
  C.NumFunctions = 0;
  C.CallWeight = 0.0;
  C.BlocksPerFunction = 3 + GetParam() % 6;
  C.InstsPerBlock = 4 + GetParam() % 5;
  C.NumGlobals = GetParam() % 8;
  C.HeapFraction = (GetParam() % 4) * 0.25;
  auto Ctx = buildFromConfig(C, /*ConnectAuxIndirectCalls=*/true);
  ASSERT_NE(Ctx, nullptr);

  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  IterativeFlowSensitive Dense(Ctx->module(), Ctx->andersen());
  Dense.solve();

  expectSamePointsTo(Ctx->module(), SFS, Dense, "SFS vs dense oracle");
  expectSamePointsTo(Ctx->module(), VSFS, Dense, "VSFS vs dense oracle");
}

TEST_P(OracleProperty, DenseAnalysisIsSound) {
  auto Ctx = buildFromConfig(configForSeed(GetParam()));
  ASSERT_NE(Ctx, nullptr);
  IterativeFlowSensitive Dense(Ctx->module(), Ctx->andersen());
  Dense.solve();
  auto &M = Ctx->module();
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V)
    EXPECT_TRUE(Ctx->andersen().ptsOfVar(V).contains(Dense.ptsOfVar(V)))
        << "dense result exceeds Andersen at " << ir::printVar(M, V);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProperty, ::testing::Range(1u, 31u));

TEST(Equivalence, SparsitySavingsGrowWithHeapIntensity) {
  // The paper's core observation: heap-intensive programs duplicate far
  // more per-object points-to sets, so VSFS's savings grow with heap use.
  auto Ratio = [](double HeapFraction) {
    workload::GenConfig C;
    C.Seed = 77;
    C.NumFunctions = 12;
    C.HeapFraction = HeapFraction;
    C.GlobalAccessFraction = 0.5;
    auto Ctx = buildFromConfig(C);
    if (!Ctx)
      return 0.0;
    FlowSensitive SFS(Ctx->svfg());
    SFS.solve();
    VersionedFlowSensitive VSFS(Ctx->svfg());
    VSFS.solve();
    return double(SFS.numPtsSetsStored()) /
           double(std::max<uint64_t>(1, VSFS.numPtsSetsStored()));
  };
  EXPECT_GT(Ratio(0.8), 1.0);
}
