//===- workload_test.cpp - Generator and suite tests ------------*- C++ -*-===//

#include "TestUtil.h"

#include "ir/Printer.h"
#include "workload/BenchmarkSuite.h"

using namespace vsfs;
using namespace vsfs::test;
using namespace vsfs::workload;

TEST(ProgramGenerator, ProducesVerifiedModules) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    C.NumFunctions = Seed % 7;
    C.NumGlobals = Seed % 5;
    auto M = generateProgram(C);
    auto Violations = ir::verifyModule(*M);
    EXPECT_TRUE(Violations.empty())
        << "seed " << Seed << ": " << Violations.front();
  }
}

TEST(ProgramGenerator, IsDeterministic) {
  GenConfig C;
  C.Seed = 123;
  C.NumFunctions = 6;
  auto M1 = generateProgram(C);
  auto M2 = generateProgram(C);
  EXPECT_EQ(ir::printModule(*M1), ir::printModule(*M2));
}

TEST(ProgramGenerator, SeedChangesProgram) {
  GenConfig A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(ir::printModule(*generateProgram(A)),
            ir::printModule(*generateProgram(B)));
}

TEST(ProgramGenerator, ScalesWithConfig) {
  GenConfig Small, Large;
  Small.NumFunctions = 2;
  Small.BlocksPerFunction = 2;
  Small.InstsPerBlock = 3;
  Large.NumFunctions = 30;
  Large.BlocksPerFunction = 6;
  Large.InstsPerBlock = 8;
  EXPECT_LT(generateProgram(Small)->numInstructions(),
            generateProgram(Large)->numInstructions());
}

TEST(ProgramGenerator, EmitsRequestedFeatures) {
  GenConfig C;
  C.Seed = 5;
  C.NumFunctions = 10;
  C.NumGlobals = 9;
  C.IndirectCallFraction = 0.8;
  C.HeapFraction = 0.9;
  auto M = generateProgram(C);
  uint32_t Heap = 0, Indirect = 0, Stores = 0, Loads = 0, Phis = 0,
           Fields = 0;
  for (ir::InstID I = 0; I < M->numInstructions(); ++I) {
    const ir::Instruction &Inst = M->inst(I);
    switch (Inst.Kind) {
    case ir::InstKind::Alloc:
      if (M->symbols().object(Inst.allocObject()).Kind == ir::ObjKind::Heap)
        ++Heap;
      break;
    case ir::InstKind::Call:
      if (Inst.isIndirectCall())
        ++Indirect;
      break;
    case ir::InstKind::Store:
      ++Stores;
      break;
    case ir::InstKind::Load:
      ++Loads;
      break;
    case ir::InstKind::Phi:
      ++Phis;
      break;
    case ir::InstKind::FieldAddr:
      ++Fields;
      break;
    default:
      break;
    }
  }
  EXPECT_GT(Heap, 0u);
  EXPECT_GT(Indirect, 0u);
  EXPECT_GT(Stores, 0u);
  EXPECT_GT(Loads, 0u);
  EXPECT_GT(Phis, 0u);
  EXPECT_GT(Fields, 0u);
}

TEST(ProgramGenerator, LinksEntry) {
  GenConfig C;
  C.NumGlobals = 3;
  auto M = generateProgram(C);
  EXPECT_NE(M->main(), ir::InvalidFun);
  EXPECT_EQ(ir::programEntry(*M), M->globalInit());
}

TEST(ProgramGenerator, WholePipelineRunsOnAllSeeds) {
  for (uint64_t Seed = 100; Seed < 105; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    auto Ctx = buildFromConfig(C);
    ASSERT_NE(Ctx, nullptr) << "seed " << Seed;
    EXPECT_GT(Ctx->svfg().numNodes(), 0u);
  }
}

TEST(BenchmarkSuite, HasFifteenNamedPresets) {
  auto Suite = benchmarkSuite();
  ASSERT_EQ(Suite.size(), 15u);
  EXPECT_EQ(Suite.front().Name, "du");
  EXPECT_EQ(Suite.back().Name, "hyriseConsole");
  std::set<std::string> Names;
  for (const BenchSpec &S : Suite) {
    Names.insert(S.Name);
    EXPECT_FALSE(S.Description.empty());
  }
  EXPECT_EQ(Names.size(), 15u) << "names are unique";
}

TEST(BenchmarkSuite, QuickSuiteIsSubset) {
  auto Quick = quickSuite();
  EXPECT_EQ(Quick.size(), 8u);
  for (const BenchSpec &S : Quick) {
    BenchSpec Found;
    EXPECT_TRUE(findBenchmark(S.Name, Found));
    EXPECT_EQ(Found.Config.Seed, S.Config.Seed);
  }
}

TEST(BenchmarkSuite, FindBenchmark) {
  BenchSpec S;
  EXPECT_TRUE(findBenchmark("bash", S));
  EXPECT_EQ(S.Name, "bash");
  EXPECT_FALSE(findBenchmark("nonexistent", S));
}

TEST(BenchmarkSuite, PresetsGenerateValidPrograms) {
  for (const BenchSpec &S : quickSuite()) {
    auto M = generateProgram(S.Config);
    auto Violations = ir::verifyModule(*M);
    EXPECT_TRUE(Violations.empty())
        << S.Name << ": " << Violations.front();
    EXPECT_GT(M->numInstructions(), 100u) << S.Name;
  }
}

TEST(BenchmarkSuite, SizesGrowAcrossTheSuite) {
  // Later presets (bash/lynx/hyrise) are substantially larger than early
  // ones (du), mirroring Table II's ordering.
  BenchSpec Du, Lynx;
  ASSERT_TRUE(findBenchmark("du", Du));
  ASSERT_TRUE(findBenchmark("lynx", Lynx));
  EXPECT_LT(generateProgram(Du.Config)->numInstructions(),
            generateProgram(Lynx.Config)->numInstructions());
}
