//===- support_test.cpp - support library tests -----------------*- C++ -*-===//

#include "support/Format.h"
#include "support/MemUsage.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include "gtest/gtest.h"

using namespace vsfs;

TEST(StatGroup, StartsEmpty) {
  StatGroup S("g");
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.lookup("missing"), 0u);
}

TEST(StatGroup, GetCreatesAndMutates) {
  StatGroup S;
  S.get("a") = 3;
  ++S.get("a");
  EXPECT_EQ(S.lookup("a"), 4u);
  S.add("a", 6);
  EXPECT_EQ(S.lookup("a"), 10u);
}

TEST(StatGroup, MaxKeepsLargest) {
  StatGroup S;
  S.max("peak", 5);
  S.max("peak", 3);
  EXPECT_EQ(S.lookup("peak"), 5u);
  S.max("peak", 9);
  EXPECT_EQ(S.lookup("peak"), 9u);
}

TEST(StatGroup, IteratesInNameOrder) {
  StatGroup S;
  S.get("zz") = 1;
  S.get("aa") = 2;
  S.get("mm") = 3;
  std::vector<std::string> Keys;
  for (const auto &[K, V] : S)
    Keys.push_back(K);
  EXPECT_EQ(Keys, (std::vector<std::string>{"aa", "mm", "zz"}));
}

TEST(StatGroup, ToStringContainsEntries) {
  StatGroup S("solver");
  S.get("visits") = 42;
  std::string Text = S.toString();
  EXPECT_NE(Text.find("solver"), std::string::npos);
  EXPECT_NE(Text.find("visits"), std::string::npos);
  EXPECT_NE(Text.find("42"), std::string::npos);
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(1.0, 0), "1");
  EXPECT_EQ(formatDouble(0.5, 3), "0.500");
}

TEST(Format, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.00 KiB");
  EXPECT_EQ(formatBytes(uint64_t(3) * 1024 * 1024 * 1024), "3.00 GiB");
}

TEST(Format, FormatRatio) {
  EXPECT_EQ(formatRatio(5.309), "5.31x");
  EXPECT_EQ(formatRatio(std::numeric_limits<double>::infinity()), "-");
}

TEST(Format, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
  // Non-positive entries are ignored (the paper ignores missing rows).
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0, 0.0, -3.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(Format, TableWriterAlignment) {
  TableWriter T({-6, 4});
  std::string Row = T.row({"abc", "9"});
  EXPECT_EQ(Row, "abc        9\n"); // 6-wide left, 2 sep, 4-wide right
  EXPECT_EQ(T.separator().size(), 13u); // 6 + 2 + 4 columns + newline.
}

TEST(Timer, MeasuresSomethingNonNegative) {
  Timer T;
  volatile uint64_t Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(ScopedTimer, Accumulates) {
  double Acc = 0;
  {
    ScopedTimer S(Acc);
  }
  {
    ScopedTimer S(Acc);
  }
  EXPECT_GE(Acc, 0.0);
}

TEST(MemUsage, PeakRSSIsPositive) { EXPECT_GT(peakRSSBytes(), 0u); }

TEST(MemUsage, PointsToBytesTracksRetainRelease) {
  uint64_t Before = PointsToBytes::live();
  PointsToBytes::retain(1000);
  EXPECT_EQ(PointsToBytes::live(), Before + 1000);
  EXPECT_GE(PointsToBytes::peak(), Before + 1000);
  PointsToBytes::release(1000);
  EXPECT_EQ(PointsToBytes::live(), Before);
}

TEST(MemUsage, ResetPeakDropsToLive) {
  PointsToBytes::retain(500);
  PointsToBytes::resetPeak();
  EXPECT_EQ(PointsToBytes::peak(), PointsToBytes::live());
  PointsToBytes::release(500);
}
