//===- svfg_test.cpp - Sparse value-flow graph tests ------------*- C++ -*-===//

#include "TestUtil.h"

#include "svfg/SVFG.h"

using namespace vsfs;
using namespace vsfs::test;
using svfg::NodeID;
using svfg::NodeKind;
using svfg::SVFG;

namespace {

ir::ObjID findObj(const ir::Module &M, const std::string &Name) {
  for (ir::ObjID O = 0; O < M.symbols().numObjects(); ++O)
    if (M.symbols().object(O).Name == Name)
      return O;
  ADD_FAILURE() << "unknown object " << Name;
  return ir::InvalidObj;
}

ir::InstID findInst(const ir::Module &M, ir::InstKind Kind,
                    const std::string &FunName) {
  ir::FunID F = M.lookupFunction(FunName);
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == Kind && M.inst(I).Parent == F)
      return I;
  ADD_FAILURE() << "no such instruction in " << FunName;
  return ir::InvalidInst;
}

bool hasIndirectEdge(const SVFG &G, NodeID From, NodeID To, ir::ObjID Obj) {
  for (const svfg::IndEdge &E : G.indirectSuccs(From))
    if (E.Dst == To && E.Obj == Obj)
      return true;
  return false;
}

bool hasDirectEdge(const SVFG &G, NodeID From, NodeID To) {
  for (NodeID S : G.directSuccs(From))
    if (S == To)
      return true;
  return false;
}

} // namespace

TEST(SVFG, InstructionNodesShareInstIDs) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      ret %a
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  ASSERT_GE(G.numNodes(), M.numInstructions());
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    EXPECT_EQ(G.node(I).Kind, NodeKind::Inst);
    EXPECT_EQ(G.node(I).Inst, I);
  }
}

TEST(SVFG, DirectDefUseEdges) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = copy %a
      %c = copy %b
      ret %c
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  ir::InstID AllocI = findInst(M, ir::InstKind::Alloc, "main");
  // alloc defines %a; the copy using %a is its direct successor.
  bool Found = false;
  for (NodeID S : G.directSuccs(G.instNode(AllocI))) {
    const ir::Instruction &Use = M.inst(G.node(S).Inst);
    if (Use.Kind == ir::InstKind::Copy && Use.copySrc() == M.inst(AllocI).Dst)
      Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(SVFG, StoreToLoadIndirectEdge) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %p = alloc
      store %x -> %p
      %y = load %p
      ret %y
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  ir::InstID Store = findInst(M, ir::InstKind::Store, "main");
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  EXPECT_TRUE(hasIndirectEdge(G, G.instNode(Store), G.instNode(Load),
                              findObj(M, "p.obj")));
}

TEST(SVFG, ParamReturnDirectFlow) {
  auto Ctx = buildFromText(R"(
    func @id(%x) {
    entry:
      ret %x
    }
    func @main() {
    entry:
      %a = alloc
      %r = call @id(%a)
      ret %r
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  // The callee's FunEntry defines %x; FunExit uses it: a direct edge.
  const ir::Function &Id = M.function(M.lookupFunction("id"));
  EXPECT_TRUE(hasDirectEdge(G, G.instNode(Id.Entry), G.instNode(Id.Exit)));
  // The alloc defining %a feeds the call node (its argument use).
  ir::InstID AllocI = findInst(M, ir::InstKind::Alloc, "main");
  ir::InstID Call = findInst(M, ir::InstKind::Call, "main");
  EXPECT_TRUE(hasDirectEdge(G, G.instNode(AllocI), G.instNode(Call)));
}

TEST(SVFG, InterproceduralObjectFlow) {
  auto Ctx = buildFromText(R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      call @writer(%a)
      %x = load @g
      ret %x
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  ir::ObjID GObj = findObj(M, "g");
  ir::FunID Writer = M.lookupFunction("writer");
  ir::InstID Call = findInst(M, ir::InstKind::Call, "main");

  // CallMu(call, g) -> EntryChi(writer, g); ExitMu(writer, g) -> CallChi.
  NodeID CallMu = G.callMuNode(Call, GObj);
  NodeID CallChi = G.callChiNode(Call, GObj);
  NodeID EntryChi = G.entryChiNode(Writer, GObj);
  NodeID ExitMu = G.exitMuNode(Writer, GObj);
  ASSERT_NE(CallMu, svfg::InvalidNode);
  ASSERT_NE(CallChi, svfg::InvalidNode);
  ASSERT_NE(EntryChi, svfg::InvalidNode);
  ASSERT_NE(ExitMu, svfg::InvalidNode);
  EXPECT_TRUE(hasIndirectEdge(G, CallMu, EntryChi, GObj));
  EXPECT_TRUE(hasIndirectEdge(G, ExitMu, CallChi, GObj));
  // Inside the callee: entry chi -> store, store -> exit mu.
  ir::InstID Store = findInst(M, ir::InstKind::Store, "writer");
  EXPECT_TRUE(hasIndirectEdge(G, EntryChi, G.instNode(Store), GObj));
  EXPECT_TRUE(hasIndirectEdge(G, G.instNode(Store), ExitMu, GObj));
  // After the call, the load reads the call chi.
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  EXPECT_TRUE(hasIndirectEdge(G, CallChi, G.instNode(Load), GObj));
}

TEST(SVFG, IndirectCallsNotWiredInOTFMode) {
  const char *Prog = R"(
    global @g
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      %fp = funcaddr @writer
      call %fp(%a)
      %x = load @g
      ret %x
    }
  )";
  // OTF mode: the call-mu/entry-chi edge is absent until a solver adds it.
  auto CtxOTF = buildFromText(Prog, /*ConnectAuxIndirectCalls=*/false);
  {
    auto &G = CtxOTF->svfg();
    auto &M = CtxOTF->module();
    ir::ObjID GObj = findObj(M, "g");
    ir::InstID Call = findInst(M, ir::InstKind::Call, "main");
    NodeID CallMu = G.callMuNode(Call, GObj);
    NodeID EntryChi = G.entryChiNode(M.lookupFunction("writer"), GObj);
    ASSERT_NE(CallMu, svfg::InvalidNode);
    ASSERT_NE(EntryChi, svfg::InvalidNode);
    EXPECT_FALSE(hasIndirectEdge(G, CallMu, EntryChi, GObj));

    // connectCallEdge adds it exactly once.
    std::vector<std::pair<NodeID, svfg::IndEdge>> Added;
    G.connectCallEdge(Call, M.lookupFunction("writer"), Added);
    EXPECT_FALSE(Added.empty());
    EXPECT_TRUE(hasIndirectEdge(G, CallMu, EntryChi, GObj));
    Added.clear();
    G.connectCallEdge(Call, M.lookupFunction("writer"), Added);
    EXPECT_TRUE(Added.empty());
  }
  // Aux mode: wired eagerly.
  auto CtxAux = buildFromText(Prog, /*ConnectAuxIndirectCalls=*/true);
  {
    auto &G = CtxAux->svfg();
    auto &M = CtxAux->module();
    ir::ObjID GObj = findObj(M, "g");
    ir::InstID Call = findInst(M, ir::InstKind::Call, "main");
    EXPECT_TRUE(hasIndirectEdge(G, G.callMuNode(Call, GObj),
                                G.entryChiNode(M.lookupFunction("writer"),
                                               GObj),
                                GObj));
  }
}

TEST(SVFG, MemPhiNodeAtJoin) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %x = alloc
      %z = alloc
      %p = alloc
      br l, r
    l:
      store %x -> %p
      br join
    r:
      store %z -> %p
      br join
    join:
      %y = load %p
      ret %y
    }
  )");
  auto &G = Ctx->svfg();
  auto &M = Ctx->module();
  ir::ObjID PObj = findObj(M, "p.obj");
  // Find the MemPhi node; both stores feed it; it feeds the load.
  NodeID Phi = svfg::InvalidNode;
  for (NodeID N = 0; N < G.numNodes(); ++N)
    if (G.node(N).Kind == NodeKind::MemPhi && G.node(N).Obj == PObj)
      Phi = N;
  ASSERT_NE(Phi, svfg::InvalidNode);
  ir::InstID Load = findInst(M, ir::InstKind::Load, "main");
  EXPECT_TRUE(hasIndirectEdge(G, Phi, G.instNode(Load), PObj));
  uint32_t StoreFeeds = 0;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == ir::InstKind::Store &&
        hasIndirectEdge(G, G.instNode(I), Phi, PObj))
      ++StoreFeeds;
  EXPECT_EQ(StoreFeeds, 2u);
}

TEST(SVFG, EdgeCountsAreConsistent) {
  workload::GenConfig C;
  C.Seed = 21;
  C.NumFunctions = 8;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  auto &G = Ctx->svfg();
  uint64_t Direct = 0, Indirect = 0;
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    Direct += G.directSuccs(N).size();
    Indirect += G.indirectSuccs(N).size();
  }
  EXPECT_EQ(Direct, G.numDirectEdges());
  EXPECT_EQ(Indirect, G.numIndirectEdges());
  EXPECT_GT(Direct, 0u);
  EXPECT_GT(Indirect, 0u);
}

TEST(SVFG, ChiMuNodesCarryTheirObject) {
  workload::GenConfig C;
  C.Seed = 33;
  C.NumFunctions = 6;
  auto Ctx = buildFromConfig(C, /*ConnectAuxIndirectCalls=*/true);
  ASSERT_NE(Ctx, nullptr);
  auto &G = Ctx->svfg();
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    const svfg::Node &Node = G.node(N);
    if (Node.Kind == NodeKind::Inst)
      continue;
    EXPECT_NE(Node.Obj, ir::InvalidObj);
    // Every edge out of a chi/mu/phi node carries that node's object.
    for (const svfg::IndEdge &E : G.indirectSuccs(N))
      EXPECT_EQ(E.Obj, Node.Obj);
  }
}
