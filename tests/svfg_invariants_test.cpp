//===- svfg_invariants_test.cpp - SVFG well-formedness ----------*- C++ -*-===//
///
/// Structural invariants of the built SVFG, checked over generated
/// programs in both call-graph wiring modes:
///
///  - every indirect edge's object is annotated on both endpoints in the
///    roles the edge implies (the source defines/forwards it, the
///    destination uses/receives it);
///  - chi/mu/phi nodes carry exactly one object and all of their edges are
///    for it;
///  - loads have no outgoing indirect edges (they define nothing);
///  - direct edges respect def-use: the source defines a variable the
///    destination uses;
///  - no duplicate indirect edges.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <set>

using namespace vsfs;
using namespace vsfs::test;
using svfg::NodeID;
using svfg::NodeKind;

namespace {

/// The objects node \p N may forward along outgoing indirect edges.
bool mayForwardObject(core::AnalysisContext &Ctx, NodeID N,
                      ir::ObjID Obj) {
  const auto &G = Ctx.svfg();
  const auto &M = Ctx.module();
  const svfg::Node &Node = G.node(N);
  switch (Node.Kind) {
  case NodeKind::Inst: {
    const ir::Instruction &Inst = M.inst(Node.Inst);
    // Only stores define objects among plain instructions.
    return Inst.Kind == ir::InstKind::Store &&
           Ctx.memSSA().chiObjs(Node.Inst).test(Obj);
  }
  case NodeKind::EntryChi:
  case NodeKind::ExitMu:
  case NodeKind::CallMu:
  case NodeKind::CallChi:
  case NodeKind::MemPhi:
    return Node.Obj == Obj;
  }
  return false;
}

/// The objects node \p N may receive along incoming indirect edges.
bool mayReceiveObject(core::AnalysisContext &Ctx, NodeID N,
                      ir::ObjID Obj) {
  const auto &G = Ctx.svfg();
  const auto &M = Ctx.module();
  const svfg::Node &Node = G.node(N);
  switch (Node.Kind) {
  case NodeKind::Inst: {
    const ir::Instruction &Inst = M.inst(Node.Inst);
    if (Inst.Kind == ir::InstKind::Load)
      return Ctx.memSSA().muObjs(Node.Inst).test(Obj);
    if (Inst.Kind == ir::InstKind::Store)
      return Ctx.memSSA().chiObjs(Node.Inst).test(Obj); // Weak-update path.
    return false;
  }
  case NodeKind::EntryChi:
  case NodeKind::ExitMu:
  case NodeKind::CallMu:
  case NodeKind::CallChi:
  case NodeKind::MemPhi:
    return Node.Obj == Obj;
  }
  return false;
}

} // namespace

class SVFGInvariants : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SVFGInvariants, IndirectEdgesAreRoleConsistent) {
  workload::GenConfig C;
  C.Seed = GetParam() * 97 + 13;
  C.NumFunctions = 3 + GetParam() % 8;
  C.NumGlobals = GetParam() % 7;
  C.IndirectCallFraction = (GetParam() % 3) * 0.3;
  bool AuxWiring = GetParam() % 2 == 0;
  auto Ctx = buildFromConfig(C, AuxWiring);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();

  for (NodeID N = 0; N < G.numNodes(); ++N) {
    std::set<std::pair<NodeID, ir::ObjID>> SeenEdges;
    for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
      EXPECT_TRUE(mayForwardObject(*Ctx, N, E.Obj))
          << "node " << N << " forwards an object it never defines";
      EXPECT_TRUE(mayReceiveObject(*Ctx, E.Dst, E.Obj))
          << "node " << E.Dst << " receives an object it never uses";
      EXPECT_TRUE(SeenEdges.emplace(E.Dst, E.Obj).second)
          << "duplicate indirect edge";
    }
  }
}

TEST_P(SVFGInvariants, LoadsDefineNothing) {
  workload::GenConfig C;
  C.Seed = GetParam() * 89 + 7;
  C.NumFunctions = 4;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();
  const auto &M = Ctx->module();
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (G.node(N).Kind != NodeKind::Inst)
      continue;
    if (M.inst(G.node(N).Inst).Kind == ir::InstKind::Load) {
      EXPECT_TRUE(G.indirectSuccs(N).empty())
          << "load nodes must not source indirect edges";
    }
  }
}

TEST_P(SVFGInvariants, DirectEdgesRespectDefUse) {
  workload::GenConfig C;
  C.Seed = GetParam() * 83 + 3;
  C.NumFunctions = 4;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();
  const auto &M = Ctx->module();
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (G.node(N).Kind != NodeKind::Inst)
      continue;
    const ir::Instruction &Def = M.inst(G.node(N).Inst);
    // Variables this node defines.
    std::set<ir::VarID> Defined;
    if (Def.definesVar())
      Defined.insert(Def.Dst);
    if (Def.Kind == ir::InstKind::FunEntry)
      for (ir::VarID P : Def.entryParams())
        Defined.insert(P);
    for (NodeID S : G.directSuccs(N)) {
      ASSERT_EQ(G.node(S).Kind, NodeKind::Inst);
      std::vector<ir::VarID> Uses;
      ir::collectUsedVars(M.inst(G.node(S).Inst), Uses);
      bool UsesDefined = false;
      for (ir::VarID U : Uses)
        UsesDefined |= Defined.count(U) > 0;
      EXPECT_TRUE(UsesDefined)
          << "direct edge to a node that uses none of the defined vars";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SVFGInvariants, ::testing::Range(1u, 13u));

// --- Transfer-equivalence coalescing (svfg/Coalesce.h) ------------------
//
// Brute-force re-derivations of the properties docs/COALESCING.md relies
// on, checked against the real pass on small generated programs.

namespace {

/// True when the SVFG node is one of the δ nodes OTF call-graph
/// resolution may still wire new in-edges into (docs/COALESCING.md).
bool isDeltaNode(const core::AnalysisContext &Ctx, NodeID N) {
  const auto &G = Ctx.svfg();
  const auto &M = Ctx.module();
  const svfg::Node &Node = G.node(N);
  if (Node.Kind == NodeKind::EntryChi)
    return M.function(Node.Fun).hasAddressTaken();
  if (Node.Kind == NodeKind::CallChi)
    return M.inst(Node.Inst).isIndirectCall();
  return false;
}

/// Brute-force semantic ground truth for the congruence: for every node,
/// the set of value sources — non-coalescible nodes (Inst mem-defs and δ
/// relays) — whose output reaches it through chains of identity-forwarding
/// relays. A relay's fixpoint value is exactly the join of its sources'
/// values, so two relays with equal source sets compute equal values in
/// every solver fixpoint.
std::vector<std::set<NodeID>> valueSources(const core::AnalysisContext &Ctx) {
  const auto &G = Ctx.svfg();
  std::vector<std::set<NodeID>> Src(G.numNodes());
  auto IsSource = [&](NodeID N) {
    return G.node(N).Kind == NodeKind::Inst || isDeltaNode(Ctx, N);
  };
  for (NodeID N = 0; N < G.numNodes(); ++N)
    if (IsSource(N))
      Src[N].insert(N);
  // Propagate through relays until stable (cycles converge by monotony).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeID N = 0; N < G.numNodes(); ++N)
      for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
        if (IsSource(E.Dst))
          continue;
        size_t Before = Src[E.Dst].size();
        Src[E.Dst].insert(Src[N].begin(), Src[N].end());
        Changed |= Src[E.Dst].size() != Before;
      }
  }
  return Src;
}

} // namespace

class CoalesceInvariants : public ::testing::TestWithParam<uint32_t> {
protected:
  workload::GenConfig config() const {
    workload::GenConfig C;
    C.Seed = GetParam() * 101 + 31;
    C.NumFunctions = 3 + GetParam() % 6;
    C.NumGlobals = GetParam() % 5;
    C.IndirectCallFraction = (GetParam() % 3) * 0.25;
    return C;
  }
};

TEST_P(CoalesceInvariants, PairwiseTransferCongruence) {
  // Compute the partition WITHOUT applying it, then re-check every member
  // against its representative by brute force on the original graph:
  //  - Inst and δ nodes are never members;
  //  - every member has exactly its representative's value-source set (the
  //    semantic congruence — equal source sets force equal fixpoints);
  //  - a SameIn member additionally shares its rep's kind and object.
  auto Ctx = buildFromConfig(config(), GetParam() % 2 == 0);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();
  svfg::CoalesceMap CM = svfg::computeTransferEquivalence(G);
  std::vector<std::set<NodeID>> Src = valueSources(*Ctx);

  uint64_t Members = 0;
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    NodeID R = CM.rep(N);
    EXPECT_EQ(CM.rep(R), R) << "rep is not a fixpoint";
    if (R == N) {
      EXPECT_EQ(CM.role(N), svfg::CoalesceRole::Self);
      continue;
    }
    ++Members;
    EXPECT_NE(G.node(N).Kind, NodeKind::Inst) << "Inst node coalesced";
    EXPECT_FALSE(isDeltaNode(*Ctx, N)) << "δ node " << N << " coalesced";
    // The congruence itself. When the rep is a source, its "set" is {R}
    // and the member must be fed by exactly that source.
    EXPECT_EQ(Src[N], Src[R])
        << "member " << N << " and rep " << R << " disagree on sources";
    if (CM.role(N) == svfg::CoalesceRole::SameIn) {
      EXPECT_EQ(G.node(N).Kind, G.node(R).Kind);
      EXPECT_EQ(G.node(N).Obj, G.node(R).Obj);
    } else {
      ASSERT_EQ(CM.role(N), svfg::CoalesceRole::Forward);
    }
  }
  EXPECT_EQ(CM.CoalescedNodes, Members);
  EXPECT_EQ(CM.ForwardMembers + CM.SameInMembers, Members);
}

TEST_P(CoalesceInvariants, RewriteIsStructurallySound) {
  auto Ctx = buildFromConfig(config(), GetParam() % 2 == 0);
  ASSERT_NE(Ctx, nullptr);
  ASSERT_TRUE(Ctx->coalesce());
  const auto &G = Ctx->svfg();
  const svfg::CoalesceMap &CM = *Ctx->coalesceMap();

  uint64_t LiveEdges = 0;
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    std::set<std::pair<NodeID, ir::ObjID>> Seen;
    for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
      ++LiveEdges;
      EXPECT_FALSE(CM.isMember(N)) << "member still has out-edges";
      EXPECT_FALSE(CM.isMember(E.Dst)) << "edge points at a member";
      EXPECT_TRUE(Seen.emplace(E.Dst, E.Obj).second) << "duplicate edge";
      if (N == E.Dst) {
        EXPECT_EQ(G.node(N).Kind, NodeKind::Inst)
            << "self-loop survived on a relay node";
      }
    }
    if (CM.isMember(N)) {
      EXPECT_TRUE(G.indirectSuccs(N).empty() && G.directSuccs(N).empty());
    }
  }
  EXPECT_EQ(LiveEdges, G.numIndirectEdges());

  // Class bookkeeping: members grouped under their rep, rep listed first.
  uint64_t Grouped = 0;
  for (uint32_t C = 0; C < CM.numClasses(); ++C) {
    const auto &Class = CM.Classes[C];
    ASSERT_GE(Class.size(), 2u) << "singleton class materialised";
    EXPECT_EQ(CM.rep(Class.front()), Class.front());
    for (NodeID N : Class) {
      EXPECT_EQ(CM.rep(N), Class.front());
      EXPECT_EQ(CM.classIndex(N), C);
    }
    Grouped += Class.size() - 1;
  }
  EXPECT_EQ(Grouped, CM.CoalescedNodes);
}

TEST_P(CoalesceInvariants, FanOutRestoresPerNodeAnswers) {
  // Build the same program twice, coalesce one copy, solve both with SFS
  // and VSFS: the coalesced pipeline must answer identically at every
  // observation point — member relays via the fan-out in inOf, and every
  // load site via ptsOfObjAt.
  auto Plain = buildFromConfig(config(), GetParam() % 2 == 0);
  auto Coal = buildFromConfig(config(), GetParam() % 2 == 0);
  ASSERT_NE(Plain, nullptr);
  ASSERT_NE(Coal, nullptr);
  ASSERT_TRUE(Coal->coalesce());
  const svfg::CoalesceMap &CM = *Coal->coalesceMap();
  ASSERT_EQ(Plain->svfg().numNodes(), Coal->svfg().numNodes());

  core::FlowSensitive SfsPlain(Plain->svfg());
  core::FlowSensitive SfsCoal(Coal->svfg());
  SfsPlain.solve();
  SfsCoal.solve();
  const auto &G = Plain->svfg();
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (!CM.isMember(N))
      continue;
    ir::ObjID O = G.node(N).Obj; // Members are always single-object relays.
    EXPECT_TRUE(SfsPlain.inOf(N, O) == SfsCoal.inOf(N, O))
        << "fan-out lost the IN set of member " << N;
  }

  core::VersionedFlowSensitive VsfsPlain(Plain->svfg());
  core::VersionedFlowSensitive VsfsCoal(Coal->svfg());
  VsfsPlain.solve();
  VsfsCoal.solve();
  const auto &M = Plain->module();
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Kind != ir::InstKind::Load)
      continue;
    EXPECT_TRUE(SfsPlain.ptsOfVar(M.inst(I).loadPtr()) ==
                SfsCoal.ptsOfVar(M.inst(I).loadPtr()));
    for (uint32_t O : SfsPlain.ptsOfVar(M.inst(I).loadPtr())) {
      EXPECT_TRUE(SfsPlain.ptsOfObjAt(I, O) == SfsCoal.ptsOfObjAt(I, O))
          << "sfs ptsOfObjAt differs at load " << I;
      EXPECT_TRUE(VsfsPlain.ptsOfObjAt(I, O) == VsfsCoal.ptsOfObjAt(I, O))
          << "vsfs ptsOfObjAt differs at load " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceInvariants, ::testing::Range(1u, 9u));
