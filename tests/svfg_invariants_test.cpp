//===- svfg_invariants_test.cpp - SVFG well-formedness ----------*- C++ -*-===//
///
/// Structural invariants of the built SVFG, checked over generated
/// programs in both call-graph wiring modes:
///
///  - every indirect edge's object is annotated on both endpoints in the
///    roles the edge implies (the source defines/forwards it, the
///    destination uses/receives it);
///  - chi/mu/phi nodes carry exactly one object and all of their edges are
///    for it;
///  - loads have no outgoing indirect edges (they define nothing);
///  - direct edges respect def-use: the source defines a variable the
///    destination uses;
///  - no duplicate indirect edges.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <set>

using namespace vsfs;
using namespace vsfs::test;
using svfg::NodeID;
using svfg::NodeKind;

namespace {

/// The objects node \p N may forward along outgoing indirect edges.
bool mayForwardObject(core::AnalysisContext &Ctx, NodeID N,
                      ir::ObjID Obj) {
  const auto &G = Ctx.svfg();
  const auto &M = Ctx.module();
  const svfg::Node &Node = G.node(N);
  switch (Node.Kind) {
  case NodeKind::Inst: {
    const ir::Instruction &Inst = M.inst(Node.Inst);
    // Only stores define objects among plain instructions.
    return Inst.Kind == ir::InstKind::Store &&
           Ctx.memSSA().chiObjs(Node.Inst).test(Obj);
  }
  case NodeKind::EntryChi:
  case NodeKind::ExitMu:
  case NodeKind::CallMu:
  case NodeKind::CallChi:
  case NodeKind::MemPhi:
    return Node.Obj == Obj;
  }
  return false;
}

/// The objects node \p N may receive along incoming indirect edges.
bool mayReceiveObject(core::AnalysisContext &Ctx, NodeID N,
                      ir::ObjID Obj) {
  const auto &G = Ctx.svfg();
  const auto &M = Ctx.module();
  const svfg::Node &Node = G.node(N);
  switch (Node.Kind) {
  case NodeKind::Inst: {
    const ir::Instruction &Inst = M.inst(Node.Inst);
    if (Inst.Kind == ir::InstKind::Load)
      return Ctx.memSSA().muObjs(Node.Inst).test(Obj);
    if (Inst.Kind == ir::InstKind::Store)
      return Ctx.memSSA().chiObjs(Node.Inst).test(Obj); // Weak-update path.
    return false;
  }
  case NodeKind::EntryChi:
  case NodeKind::ExitMu:
  case NodeKind::CallMu:
  case NodeKind::CallChi:
  case NodeKind::MemPhi:
    return Node.Obj == Obj;
  }
  return false;
}

} // namespace

class SVFGInvariants : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SVFGInvariants, IndirectEdgesAreRoleConsistent) {
  workload::GenConfig C;
  C.Seed = GetParam() * 97 + 13;
  C.NumFunctions = 3 + GetParam() % 8;
  C.NumGlobals = GetParam() % 7;
  C.IndirectCallFraction = (GetParam() % 3) * 0.3;
  bool AuxWiring = GetParam() % 2 == 0;
  auto Ctx = buildFromConfig(C, AuxWiring);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();

  for (NodeID N = 0; N < G.numNodes(); ++N) {
    std::set<std::pair<NodeID, ir::ObjID>> SeenEdges;
    for (const svfg::IndEdge &E : G.indirectSuccs(N)) {
      EXPECT_TRUE(mayForwardObject(*Ctx, N, E.Obj))
          << "node " << N << " forwards an object it never defines";
      EXPECT_TRUE(mayReceiveObject(*Ctx, E.Dst, E.Obj))
          << "node " << E.Dst << " receives an object it never uses";
      EXPECT_TRUE(SeenEdges.emplace(E.Dst, E.Obj).second)
          << "duplicate indirect edge";
    }
  }
}

TEST_P(SVFGInvariants, LoadsDefineNothing) {
  workload::GenConfig C;
  C.Seed = GetParam() * 89 + 7;
  C.NumFunctions = 4;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();
  const auto &M = Ctx->module();
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (G.node(N).Kind != NodeKind::Inst)
      continue;
    if (M.inst(G.node(N).Inst).Kind == ir::InstKind::Load) {
      EXPECT_TRUE(G.indirectSuccs(N).empty())
          << "load nodes must not source indirect edges";
    }
  }
}

TEST_P(SVFGInvariants, DirectEdgesRespectDefUse) {
  workload::GenConfig C;
  C.Seed = GetParam() * 83 + 3;
  C.NumFunctions = 4;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  const auto &G = Ctx->svfg();
  const auto &M = Ctx->module();
  for (NodeID N = 0; N < G.numNodes(); ++N) {
    if (G.node(N).Kind != NodeKind::Inst)
      continue;
    const ir::Instruction &Def = M.inst(G.node(N).Inst);
    // Variables this node defines.
    std::set<ir::VarID> Defined;
    if (Def.definesVar())
      Defined.insert(Def.Dst);
    if (Def.Kind == ir::InstKind::FunEntry)
      for (ir::VarID P : Def.entryParams())
        Defined.insert(P);
    for (NodeID S : G.directSuccs(N)) {
      ASSERT_EQ(G.node(S).Kind, NodeKind::Inst);
      std::vector<ir::VarID> Uses;
      ir::collectUsedVars(M.inst(G.node(S).Inst), Uses);
      bool UsesDefined = false;
      for (ir::VarID U : Uses)
        UsesDefined |= Defined.count(U) > 0;
      EXPECT_TRUE(UsesDefined)
          << "direct edge to a node that uses none of the defined vars";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SVFGInvariants, ::testing::Range(1u, 13u));
