//===- vsfs_test.cpp - VSFS behavioural tests -------------------*- C++ -*-===//
///
/// VSFS (§IV-D) on hand-written programs with known exact answers, plus the
/// sparsity effects the paper illustrates: fewer stored points-to sets and
/// avoided propagations relative to SFS.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace vsfs;
using namespace vsfs::test;
using core::FlowSensitive;
using core::VersionedFlowSensitive;

TEST(VSFS, StrongUpdateSeparatesStores) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc
      store %a -> %p
      %x = load %p
      store %b -> %p
      %y = load %p
      ret %y
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, VSFS, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(M, VSFS, "y"), (std::set<std::string>{"b.obj"}));
}

TEST(VSFS, WeakUpdateAccumulates) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %b = alloc
      %p = alloc [weak]
      store %a -> %p
      %x = load %p
      store %b -> %p
      %y = load %p
      ret %y
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, VSFS, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(M, VSFS, "y"),
            (std::set<std::string>{"a.obj", "b.obj"}));
}

TEST(VSFS, SharedVersionsShareOnePointsToSet) {
  // The motivating example: loads on both branches of the first store read
  // the same version; the analysis stores one set for them.
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %a = alloc
      %o = alloc [weak]
      %p = copy %o
      store %a -> %p
      br l, r
    l:
      %x1 = load %p
      br out
    r:
      %x2 = load %p
      br out
    out:
      %x3 = load %p
      ret %x3
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  for (const char *Name : {"x1", "x2", "x3"})
    EXPECT_EQ(pointees(M, VSFS, Name), (std::set<std::string>{"a.obj"}));

  // One store, one object: exactly one non-empty version set for o.obj.
  EXPECT_EQ(VSFS.numPtsSetsStored(), 1u);
}

TEST(VSFS, StoresFewerSetsThanSFS) {
  workload::GenConfig C;
  C.Seed = 42;
  C.NumFunctions = 10;
  C.HeapFraction = 0.6;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  FlowSensitive SFS(Ctx->svfg());
  SFS.solve();
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  EXPECT_LT(VSFS.numPtsSetsStored(), SFS.numPtsSetsStored())
      << "single-object sparsity: shared versions store fewer sets";
  EXPECT_GT(VSFS.stats().lookup("propagations-avoided"), 0u);
}

TEST(VSFS, InterproceduralFlowThroughDeltaNodes) {
  auto Ctx = buildFromText(R"(
    global @g
    global @table = @writer
    func @writer(%v) {
    entry:
      store %v -> @g
      ret
    }
    func @main() {
    entry:
      %a = alloc
      %fp = load @table
      call %fp(%a)
      %x = load @g
      ret %x
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, VSFS, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(VSFS.stats().lookup("otf-call-edges"), 1u);
}

TEST(VSFS, OnTheFlyCallGraphPrecision) {
  auto Ctx = buildFromText(R"(
    global @fp
    func @f(%x) {
    entry:
      %fo = alloc
      ret %fo
    }
    func @g(%y) {
    entry:
      %go = alloc
      ret %go
    }
    func @main() {
    entry:
      %pf = funcaddr @f
      %pg = funcaddr @g
      store %pf -> @fp
      store %pg -> @fp
      %callee = load @fp
      %r = call %callee()
      ret %r
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, VSFS, "r"), (std::set<std::string>{"go.obj"}));
  // Only the strongly-updated final target is called.
  uint64_t Edges = 0;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I)
    if (M.inst(I).Kind == ir::InstKind::Call && M.inst(I).Parent == M.main())
      Edges += VSFS.callGraph().callees(I).size();
  EXPECT_EQ(Edges, 1u);
}

TEST(VSFS, EpsilonVersionsStayEmpty) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %never = alloc
      %l = load %never
      ret %l
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  EXPECT_EQ(pointees(Ctx->module(), VSFS, "l"), (std::set<std::string>{}));
  for (core::Version V = 0; V < VSFS.versioning().numVersions(); ++V)
    if (VSFS.versioning().isEpsilon(V)) {
      EXPECT_TRUE(VSFS.ptsOfVersion(V).empty());
    }
}

TEST(VSFS, FieldsTrackedSeparately) {
  auto Ctx = buildFromText(R"(
    func @main() {
    entry:
      %s = alloc [fields=2]
      %a = alloc
      %b = alloc
      %f1 = field %s, 1
      store %a -> %s
      store %b -> %f1
      %x = load %s
      %y = load %f1
      ret %x
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, VSFS, "x"), (std::set<std::string>{"a.obj"}));
  EXPECT_EQ(pointees(M, VSFS, "y"), (std::set<std::string>{"b.obj"}));
}

TEST(VSFS, RecursionConverges) {
  auto Ctx = buildFromText(R"(
    global @acc
    func @rec(%n) {
    entry:
      store %n -> @acc
      br stop, go
    go:
      %l = alloc
      %r = call @rec(%l)
      ret %r
    stop:
      ret %n
    }
    func @main() {
    entry:
      %a = alloc
      %v = call @rec(%a)
      %w = load @acc
      ret %v
    }
  )");
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  auto &M = Ctx->module();
  EXPECT_EQ(pointees(M, VSFS, "v"),
            (std::set<std::string>{"a.obj", "l.obj"}));
  EXPECT_EQ(pointees(M, VSFS, "w"),
            (std::set<std::string>{"a.obj", "l.obj"}));
}

TEST(VSFS, VersioningTimeIsReported) {
  workload::GenConfig C;
  C.Seed = 8;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  VersionedFlowSensitive VSFS(Ctx->svfg());
  VSFS.solve();
  EXPECT_GE(VSFS.versioningSeconds(), 0.0);
  EXPECT_GT(VSFS.stats().lookup("versions"), 0u);
}
