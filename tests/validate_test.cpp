//===- validate_test.cpp - Solution/SSA validator tests ---------*- C++ -*-===//
///
/// Runs the solver-independent validators (andersen::validateSolution,
/// memssa::validateMemSSA) over hand-written and generated programs: the
/// production pipeline must always validate cleanly, across sizes, seeds
/// and feature mixes. These validators re-derive the closure/dominance
/// properties from scratch, so worklist/collapsing/renaming bugs cannot
/// escape them.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "andersen/Validate.h"
#include "memssa/Validate.h"

using namespace vsfs;
using namespace vsfs::test;

TEST(Validators, CleanOnHandWrittenPrograms) {
  const char *Programs[] = {
      R"(
        func @main() {
        entry:
          %a = alloc
          %p = alloc
          store %a -> %p
          %x = load %p
          ret %x
        }
      )",
      R"(
        global @g = @f
        func @f(%x) {
        entry:
          store %x -> @g
          ret %x
        }
        func @main() {
        entry:
          %fp = load @g
          %a = alloc [heap] [fields=3]
          %f2 = field %a, 2
          %r = call %fp(%f2)
          br l, r
        l:
          ret %r
        r:
          ret %a
        }
      )",
  };
  for (const char *Text : Programs) {
    auto Ctx = buildFromText(Text);
    ASSERT_NE(Ctx, nullptr);
    auto AErrors = andersen::validateSolution(Ctx->module(),
                                              Ctx->andersen());
    EXPECT_TRUE(AErrors.empty()) << AErrors.front();
    auto MErrors = memssa::validateMemSSA(Ctx->module(), Ctx->memSSA());
    EXPECT_TRUE(MErrors.empty()) << MErrors.front();
  }
}

class ValidatorProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ValidatorProperty, AndersenSolutionIsAClosure) {
  workload::GenConfig C;
  C.Seed = GetParam() * 37 + 11;
  C.NumFunctions = 2 + GetParam() % 10;
  C.NumGlobals = GetParam() % 8;
  C.IndirectCallFraction = (GetParam() % 4) * 0.25;
  C.HeapFraction = (GetParam() % 3) * 0.4;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  auto Errors = andersen::validateSolution(Ctx->module(), Ctx->andersen());
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST_P(ValidatorProperty, MemSSADefsDominateUses) {
  workload::GenConfig C;
  C.Seed = GetParam() * 41 + 3;
  C.NumFunctions = 2 + GetParam() % 10;
  C.NumGlobals = GetParam() % 8;
  C.BlocksPerFunction = 2 + GetParam() % 6;
  C.LoopProbability = 0.4;
  auto Ctx = buildFromConfig(C);
  ASSERT_NE(Ctx, nullptr);
  auto Errors = memssa::validateMemSSA(Ctx->module(), Ctx->memSSA());
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST_P(ValidatorProperty, SubstitutedSolverValidatesToo) {
  workload::GenConfig C;
  C.Seed = GetParam() * 53 + 7;
  C.NumFunctions = 3 + GetParam() % 8;
  C.NumGlobals = 4;
  auto Module = workload::generateProgram(C);
  andersen::Andersen::Options Opts;
  Opts.OfflineSubstitution = true;
  andersen::Andersen A(*Module, Opts);
  A.solve();
  auto Errors = andersen::validateSolution(*Module, A);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorProperty, ::testing::Range(1u, 21u));
