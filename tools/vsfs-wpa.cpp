//===- vsfs-wpa.cpp - Whole-program analysis driver -------------*- C++ -*-===//
///
/// The command-line driver, mirroring SVF's `wpa` tool that the paper's
/// artifact benchmarks with (`wpa -ander / -fspta / -vfspta prog.bc`):
///
///   vsfs-wpa [options] program.ir
///   vsfs-wpa --bench lynx --analysis=vsfs --stats
///   vsfs-wpa --gen 42 --analysis=all --print-pts
///   vsfs-wpa --bench du --analysis=sfs --stats-json=du.json
///
/// Inputs: a textual-IR file, a named benchmark preset (--bench), or a
/// generated program (--gen SEED). Analyses come from the
/// core::AnalysisRunner registry (ander | iter | sfs | vsfs | all); the
/// driver itself only parses flags and formats output — the build→solve
/// sequence lives in the registry, shared with the benches and tests.
///
//===----------------------------------------------------------------------===//

#include "adt/PointsToCache.h"
#include "checker/Checker.h"
#include "core/AnalysisContext.h"
#include "core/AnalysisRunner.h"
#include "core/DotExport.h"
#include "core/VersionedFlowSensitive.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "query/QueryEngine.h"
#include "service/Client.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "support/Format.h"
#include "support/MemUsage.h"
#include "support/Timer.h"
#include "taint/Report.h"
#include "taint/TaintEngine.h"
#include "taint/WitnessVerifier.h"
#include "workload/BenchmarkSuite.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

using namespace vsfs;

namespace {

/// Documented exit-code contract (docs/ROBUSTNESS.md, asserted by
/// tests/cli_exit_codes.sh). Keep the values stable: scripts depend on them.
enum ExitCode : int {
  ExitOK = 0,        ///< analysis ran to the requested result
  ExitUsage = 1,     ///< bad flags / bad invocation (--help exits 0)
  ExitInput = 2,     ///< parse/verify failure, unreadable input, bad output
  ExitExhausted = 3, ///< budget exhausted under --on-exhaustion=fail
  ExitFault = 4,     ///< internal fault (injected or detected)
  ExitUnavailable = 5, ///< --connect: daemon unreachable or shedding load
};

struct Options {
  std::string InputFile;
  std::string BenchName;
  uint64_t GenSeed = 0;
  bool UseGen = false;
  std::string Analysis = "vsfs";
  std::string Mode = "exhaustive"; ///< "exhaustive" | "demand".
  double QueryTimeBudget = 0;      ///< per-query deadline (demand mode)
  uint64_t QueryStepBudget = 0;    ///< per-query step limit (demand mode)
  adt::PtsRepr PtsRepr = adt::PtsRepr::SBV;
  bool Coalesce = false; ///< --coalesce=on: pre-solve SVFG coalescing.
  uint32_t CheckMask = 0; ///< Checkers to run; 0 = none.
  /// --check-specs: "builtin" (the built-in rules, filtered by CheckMask)
  /// or a spec-file path. Non-empty switches checking to the taint spec
  /// engine (src/taint/) with witness verification; plain --check keeps
  /// the legacy walk.
  std::string CheckSpecs;
  std::string FindingsJson; ///< --findings-json target; "-" = stdout.
  bool InjectBugs = false;
  bool Lint = false;
  bool ListAnalyses = false;
  bool AuxCallGraph = false;
  bool OVS = false;
  bool PrintPts = false;
  bool PrintVersions = false;
  bool PrintModule = false;
  bool Stats = false;
  double TimeBudget = 0;  ///< seconds; 0 = no deadline
  uint64_t MemBudget = 0; ///< bytes; 0 = no ceiling
  uint64_t StepBudget = 0;
  core::SolverOptions::OnExhaustion Policy =
      core::SolverOptions::OnExhaustion::Fail;
  std::string StatsJson; // "-" = stdout
  std::string DumpCallGraph; // "-" = stdout
  std::string DumpSVFG;
  std::string DumpCFG; // Function name; printed to stdout.
  /// --connect: run as a thin client against a vsfs-served socket instead
  /// of analysing in-process (docs/SERVICE.md).
  std::string Connect;
  bool Health = false;        ///< --health: query daemon health (--connect)
  std::string EmitIR;         ///< --emit-ir target; "-" = stdout
  bool DeterministicStats = false; ///< zero wall-clock fields in stats JSON
};

void usage(const char *Prog) {
  std::printf(
      "usage: %s [options] [program.ir]\n"
      "\n"
      "input (exactly one):\n"
      "  program.ir            textual IR file\n"
      "  --bench NAME          a named benchmark preset (see bench_table2)\n"
      "  --gen SEED            a generated workload\n"
      "\n"
      "options:\n"
      "  --analysis=KIND       %s | all  (default vsfs)\n"
      "  --mode=MODE           exhaustive (one whole-program solve, the\n"
      "                        default) | demand (per-query backward-slice\n"
      "                        solves; needs --check, works with\n"
      "                        --analysis=sfs | vsfs | ander)\n"
      "  --query-time-budget=S per-query wall-clock budget (demand mode)\n"
      "  --query-step-budget=N per-query solver-step budget (demand mode);\n"
      "                        an exhausted query degrades to auxiliary\n"
      "                        precision, later queries re-solve fresh\n"
      "  --pts-repr=REPR       points-to set representation:\n"
      "                        sbv (one bit vector per set, the default) |\n"
      "                        persistent (hash-consed, memoised algebra)\n"
      "  --coalesce=MODE       off (default) | on: pre-solve transfer-\n"
      "                        equivalence coalescing of the SVFG — merges\n"
      "                        redundancy-equivalent relay nodes before\n"
      "                        solving; results are bit-identical\n"
      "                        (docs/COALESCING.md)\n"
      "  --check=KINDS         run bug checkers on each analysis's result:\n"
      "                        comma list of uaf | dfree | null | leak |\n"
      "                        uread | ufree | all (uread/ufree need the\n"
      "                        spec engine: --check-specs)\n"
      "  --check-specs=S       run the declarative taint spec engine\n"
      "                        (docs/CHECKERS.md) instead of the legacy\n"
      "                        walk: 'builtin' (the built-in rules,\n"
      "                        filtered by --check) or a spec-file path.\n"
      "                        Every finding carries an independently\n"
      "                        verified source→sink path witness\n"
      "  --findings-json[=F]   write spec-engine findings (witnesses,\n"
      "                        verdicts) as JSON; needs --check-specs and\n"
      "                        a single --analysis\n"
      "  --inject-bugs         seed the generated program (--gen/--bench)\n"
      "                        with known bug patterns; checker findings "
      "are\n"
      "                        then scored as TP/FP/FN against ground "
      "truth\n"
      "  --lint                print non-fatal IR lint warnings\n"
      "  --list-analyses       print the analysis registry and exit\n"
      "  --aux-call-graph      reuse Andersen's call graph instead of\n"
      "                        resolving indirect calls on the fly\n"
      "  --ovs                 offline variable substitution for the\n"
      "                        auxiliary analysis (precision-neutral)\n"
      "  --print-pts           print each top-level variable's points-to "
      "set\n"
      "  --print-versions      print the version each load consumes and "
      "the\n"
      "                        version-sharing summary (vsfs only)\n"
      "  --print-module        print the parsed module\n"
      "  --stats               print analysis statistics (aligned text)\n"
      "  --time-budget=SECS    wall-clock budget for the whole pipeline\n"
      "  --mem-budget=BYTES    points-to memory / RSS-growth ceiling\n"
      "  --step-budget=N       solver-step budget per flow-sensitive "
      "phase\n"
      "  --on-exhaustion=P     fail (exit 3) | degrade (fall back to the\n"
      "                        auxiliary result) | partial (expose the\n"
      "                        monotone in-flight state)  (default fail)\n"
      "  --stats-json[=F]      write pipeline + analysis statistics as "
      "JSON\n"
      "  --deterministic-stats zero every wall-clock field in the stats\n"
      "                        JSON so identical inputs yield identical\n"
      "                        documents (the service identity tests)\n"
      "  --dump-callgraph[=F]  write the resolved call graph as dot\n"
      "  --dump-svfg[=F]       write the SVFG as dot (capped at 500 nodes)\n"
      "  --dump-cfg=FUNC       write FUNC's CFG as dot to stdout\n"
      "  --emit-ir[=F]         write the loaded/generated module as textual\n"
      "                        IR and exit (materialises --bench/--gen\n"
      "                        presets as files)\n"
      "\n"
      "service mode (docs/SERVICE.md):\n"
      "  --connect=SOCK        send this request to the vsfs-served daemon\n"
      "                        at unix socket SOCK instead of analysing\n"
      "                        in-process (print/dump/lint flags are not\n"
      "                        served)\n"
      "  --health              with --connect: print the daemon's health\n"
      "                        JSON and exit\n"
      "\n"
      "exit codes: 0 ok | 1 usage | 2 input error | 3 budget exhausted\n"
      "            (--on-exhaustion=fail) | 4 internal fault\n"
      "            | 5 service unavailable (--connect: unreachable daemon\n"
      "            or load shed)\n",
      Prog, core::AnalysisRunner::registry().namesString().c_str());
}

/// Three-way flag parse so --help can exit 0 while bad flags exit 1.
enum class ParseResult { Run, Help, Error };

ParseResult parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return ParseResult::Help;
    } else if (Arg == "--bench" && I + 1 < Argc) {
      Opts.BenchName = Argv[++I];
    } else if (Arg == "--gen" && I + 1 < Argc) {
      Opts.UseGen = true;
      Opts.GenSeed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (const char *V = Value("--analysis=")) {
      Opts.Analysis = V;
    } else if (const char *VMo = Value("--mode=")) {
      Opts.Mode = VMo;
      if (Opts.Mode != "exhaustive" && Opts.Mode != "demand") {
        std::fprintf(stderr,
                     "error: bad --mode '%s' (want exhaustive | demand)\n",
                     VMo);
        return ParseResult::Error;
      }
    } else if (const char *VQt = Value("--query-time-budget=")) {
      char *End = nullptr;
      Opts.QueryTimeBudget = std::strtod(VQt, &End);
      if (End == VQt || *End || Opts.QueryTimeBudget <= 0) {
        std::fprintf(stderr,
                     "error: bad --query-time-budget '%s' (want seconds)\n",
                     VQt);
        return ParseResult::Error;
      }
    } else if (const char *VQs = Value("--query-step-budget=")) {
      char *End = nullptr;
      Opts.QueryStepBudget = std::strtoull(VQs, &End, 10);
      if (End == VQs || *End || Opts.QueryStepBudget == 0) {
        std::fprintf(stderr,
                     "error: bad --query-step-budget '%s' (want steps)\n",
                     VQs);
        return ParseResult::Error;
      }
    } else if (const char *VR = Value("--pts-repr=")) {
      if (!adt::parsePtsRepr(VR, Opts.PtsRepr)) {
        std::fprintf(stderr,
                     "error: bad --pts-repr '%s' (want sbv | persistent)\n",
                     VR);
        return ParseResult::Error;
      }
    } else if (const char *VCo = Value("--coalesce=")) {
      std::string_view S = VCo;
      if (S == "on") {
        Opts.Coalesce = true;
      } else if (S == "off") {
        Opts.Coalesce = false;
      } else {
        std::fprintf(stderr, "error: bad --coalesce '%s' (want off | on)\n",
                     VCo);
        return ParseResult::Error;
      }
    } else if (const char *VC = Value("--check=")) {
      if (!checker::parseCheckKinds(VC, Opts.CheckMask)) {
        std::fprintf(stderr,
                     "error: bad --check spec '%s' (want a comma list of "
                     "uaf | dfree | null | leak | uread | ufree | all)\n",
                     VC);
        return ParseResult::Error;
      }
    } else if (Arg == "--check") {
      Opts.CheckMask = checker::AllChecks;
    } else if (const char *VCS = Value("--check-specs=")) {
      if (!*VCS) {
        std::fprintf(stderr,
                     "error: bad --check-specs '' (want builtin | FILE)\n");
        return ParseResult::Error;
      }
      Opts.CheckSpecs = VCS;
    } else if (Arg == "--findings-json") {
      Opts.FindingsJson = "-";
    } else if (const char *VFJ = Value("--findings-json=")) {
      Opts.FindingsJson = VFJ;
    } else if (Arg == "--inject-bugs") {
      Opts.InjectBugs = true;
    } else if (Arg == "--lint") {
      Opts.Lint = true;
    } else if (Arg == "--list-analyses") {
      Opts.ListAnalyses = true;
    } else if (Arg == "--aux-call-graph") {
      Opts.AuxCallGraph = true;
    } else if (Arg == "--ovs") {
      Opts.OVS = true;
    } else if (Arg == "--print-pts") {
      Opts.PrintPts = true;
    } else if (Arg == "--print-versions") {
      Opts.PrintVersions = true;
    } else if (Arg == "--print-module") {
      Opts.PrintModule = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (const char *VT = Value("--time-budget=")) {
      char *End = nullptr;
      Opts.TimeBudget = std::strtod(VT, &End);
      if (End == VT || *End || Opts.TimeBudget <= 0) {
        std::fprintf(stderr, "error: bad --time-budget '%s' (want seconds)\n",
                     VT);
        return ParseResult::Error;
      }
    } else if (const char *VM = Value("--mem-budget=")) {
      char *End = nullptr;
      Opts.MemBudget = std::strtoull(VM, &End, 10);
      if (End == VM || *End || Opts.MemBudget == 0) {
        std::fprintf(stderr, "error: bad --mem-budget '%s' (want bytes)\n",
                     VM);
        return ParseResult::Error;
      }
    } else if (const char *VS = Value("--step-budget=")) {
      char *End = nullptr;
      Opts.StepBudget = std::strtoull(VS, &End, 10);
      if (End == VS || *End || Opts.StepBudget == 0) {
        std::fprintf(stderr, "error: bad --step-budget '%s' (want steps)\n",
                     VS);
        return ParseResult::Error;
      }
    } else if (const char *VP = Value("--on-exhaustion=")) {
      std::string_view P = VP;
      if (P == "fail")
        Opts.Policy = core::SolverOptions::OnExhaustion::Fail;
      else if (P == "degrade")
        Opts.Policy = core::SolverOptions::OnExhaustion::Degrade;
      else if (P == "partial")
        Opts.Policy = core::SolverOptions::OnExhaustion::Partial;
      else {
        std::fprintf(stderr,
                     "error: bad --on-exhaustion '%s' (want fail | degrade "
                     "| partial)\n",
                     VP);
        return ParseResult::Error;
      }
    } else if (Arg == "--stats-json") {
      Opts.StatsJson = "-";
    } else if (const char *VJ = Value("--stats-json=")) {
      Opts.StatsJson = VJ;
    } else if (const char *VCn = Value("--connect=")) {
      if (!*VCn) {
        std::fprintf(stderr, "error: bad --connect '' (want a socket path)\n");
        return ParseResult::Error;
      }
      Opts.Connect = VCn;
    } else if (Arg == "--health") {
      Opts.Health = true;
    } else if (Arg == "--emit-ir") {
      Opts.EmitIR = "-";
    } else if (const char *VEI = Value("--emit-ir=")) {
      Opts.EmitIR = VEI;
    } else if (Arg == "--deterministic-stats") {
      Opts.DeterministicStats = true;
    } else if (Arg == "--dump-callgraph") {
      Opts.DumpCallGraph = "-";
    } else if (const char *V2 = Value("--dump-callgraph=")) {
      Opts.DumpCallGraph = V2;
    } else if (Arg == "--dump-svfg") {
      Opts.DumpSVFG = "-";
    } else if (const char *V3 = Value("--dump-svfg=")) {
      Opts.DumpSVFG = V3;
    } else if (const char *V4 = Value("--dump-cfg=")) {
      Opts.DumpCFG = V4;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Opts.InputFile = Arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return ParseResult::Error;
    }
  }
  if (Opts.ListAnalyses)
    return ParseResult::Run; // Needs no input.
  if (Opts.Health) {
    if (Opts.Connect.empty()) {
      std::fprintf(stderr, "error: --health needs --connect\n");
      return ParseResult::Error;
    }
    return ParseResult::Run; // Needs no input either.
  }
  int Inputs = !Opts.InputFile.empty();
  Inputs += !Opts.BenchName.empty();
  Inputs += Opts.UseGen;
  if (Inputs != 1) {
    usage(Argv[0]);
    return ParseResult::Error;
  }
  if (Opts.InjectBugs && !Opts.UseGen && Opts.BenchName.empty()) {
    std::fprintf(stderr, "error: --inject-bugs needs --gen or --bench\n");
    return ParseResult::Error;
  }
  if (Opts.Mode == "demand") {
    // Demand mode answers the checkers' questions from per-query slices;
    // without a client there is nothing to query, and "all" would mix
    // query scopes across backends.
    if (!Opts.CheckMask && Opts.CheckSpecs.empty()) {
      std::fprintf(stderr,
                   "error: --mode=demand needs --check or --check-specs\n");
      return ParseResult::Error;
    }
    if (Opts.Analysis == "all") {
      std::fprintf(stderr,
                   "error: --mode=demand needs one --analysis, not 'all'\n");
      return ParseResult::Error;
    }
  }
  if (!Opts.FindingsJson.empty()) {
    // The findings document names one analysis; "all" would interleave
    // finding sets with different precision into one file.
    if (Opts.CheckSpecs.empty()) {
      std::fprintf(stderr, "error: --findings-json needs --check-specs\n");
      return ParseResult::Error;
    }
    if (Opts.Analysis == "all") {
      std::fprintf(stderr,
                   "error: --findings-json needs one --analysis, not 'all'\n");
      return ParseResult::Error;
    }
  }
  if (!Opts.Connect.empty()) {
    // The wire request is one analysis run producing Summary + JSON
    // documents; interactive print/dump/lint output and ground truth do
    // not travel, and "all" would be several runs in one request.
    const char *Refused = Opts.Analysis == "all" ? "--analysis=all"
                          : Opts.PrintPts        ? "--print-pts"
                          : Opts.PrintVersions   ? "--print-versions"
                          : Opts.PrintModule     ? "--print-module"
                          : Opts.Lint            ? "--lint"
                          : Opts.InjectBugs      ? "--inject-bugs"
                          : !Opts.DumpCallGraph.empty() ? "--dump-callgraph"
                          : !Opts.DumpSVFG.empty()      ? "--dump-svfg"
                          : !Opts.DumpCFG.empty()       ? "--dump-cfg"
                          : !Opts.EmitIR.empty()        ? "--emit-ir"
                                                        : nullptr;
    if (Refused) {
      std::fprintf(stderr, "error: %s is not served over --connect\n",
                   Refused);
      return ParseResult::Error;
    }
  }
  return ParseResult::Run;
}

bool writeOut(const std::string &Target, const std::string &Content) {
  if (Target == "-") {
    std::fputs(Content.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Target);
  if (!(Out << Content)) {
    std::fprintf(stderr, "error: cannot write %s\n", Target.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", Target.c_str(), Content.size());
  return true;
}

void printPts(const ir::Module &M, const core::PointerAnalysisResult &A,
              const char *Banner) {
  std::printf("--- points-to sets (%s) ---\n", Banner);
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    const PointsTo &Pts = A.ptsOfVar(V);
    if (Pts.empty())
      continue;
    std::string Line = ir::printVar(M, V) + " -> {";
    bool First = true;
    for (uint32_t O : Pts) {
      Line += (First ? " " : ", ") + M.symbols().object(O).Name;
      First = false;
    }
    std::printf("%s }\n", Line.c_str());
  }
}

void printVersions(const ir::Module &M,
                   const core::VersionedFlowSensitive &VSFS) {
  // Which version each load consumes, and how often versions are shared —
  // the sharing is exactly what VSFS saves storage with.
  std::printf("--- consumed versions at loads ---\n");
  std::unordered_map<core::Version, uint32_t> Consumers;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Kind != ir::InstKind::Load)
      continue;
    for (uint32_t O : VSFS.ptsOfVar(M.inst(I).loadPtr())) {
      if (M.symbols().isFunctionObject(O))
        continue;
      core::Version V = VSFS.versioning().consume(I, O);
      ++Consumers[V];
      std::printf("  %-28s %s: v%u%s\n", ir::printInst(M, I).c_str(),
                  M.symbols().object(O).Name.c_str(), V,
                  VSFS.versioning().isEpsilon(V) ? " (eps)" : "");
    }
  }
  uint32_t Shared = 0;
  for (const auto &[V, N] : Consumers)
    if (N > 1)
      ++Shared;
  std::printf("  %zu distinct versions consumed; %u shared by more "
              "than one load\n",
              Consumers.size(), Shared);
}

void listAnalyses() {
  std::printf("registered analyses:\n");
  for (const auto &E : core::AnalysisRunner::registry().entries()) {
    std::string Names = E.Name;
    for (const std::string &A : E.Aliases)
      Names += " | " + A;
    std::printf("  %-14s %s\n", Names.c_str(), E.Description.c_str());
  }
}

/// Prints \p Findings, scores them against \p GT when available, and fills
/// \p CG with the counters that end up in --stats-json. Shared between the
/// exhaustive path (findings from \c checker::runCheckers) and the demand
/// path (findings from \c query::runCheckersDemand).
void reportFindings(const core::AnalysisContext &Ctx, const std::string &Name,
                    std::vector<checker::Finding> Findings, uint32_t KindMask,
                    const checker::GroundTruth *GT, StatGroup &CG,
                    bool AuxPrecision) {
  // A degraded backend answers at the auxiliary analysis's precision;
  // stamp every finding so consumers know to expect extra false positives.
  if (AuxPrecision)
    for (checker::Finding &F : Findings)
      F.AuxPrecision = true;
  std::printf("--- %s: %zu checker finding(s)%s ---\n", Name.c_str(),
              Findings.size(), AuxPrecision ? " [aux-precision]" : "");
  for (const checker::Finding &F : Findings)
    std::printf("  %s\n", checker::printFinding(Ctx.module(), F).c_str());

  uint32_t PerKind[checker::NumCheckKinds] = {};
  for (const checker::Finding &F : Findings)
    ++PerKind[static_cast<uint32_t>(F.Kind)];
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(KindMask & (1u << K)))
      continue;
    const char *Flag = checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    CG.get(std::string(Flag) + "_findings") = PerKind[K];
  }

  if (!GT)
    return;
  auto Scores = checker::scoreFindings(Findings, *GT);
  std::printf("  vs ground truth:");
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(KindMask & (1u << K)))
      continue;
    const checker::CheckScore &S = Scores[K];
    const char *Flag = checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    std::printf(" %s TP=%u FP=%u FN=%u", Flag, S.TP, S.FP, S.FN);
    CG.get(std::string(Flag) + "_tp") = S.TP;
    CG.get(std::string(Flag) + "_fp") = S.FP;
    CG.get(std::string(Flag) + "_fn") = S.FN;
  }
  std::printf("\n");
}

/// Runs the exhaustive checkers over one solved analysis and reports.
void runCheckersFor(const core::AnalysisContext &Ctx, const std::string &Name,
                    const core::PointerAnalysisResult &A, uint32_t KindMask,
                    const checker::GroundTruth *GT, StatGroup &CG,
                    bool AuxPrecision = false) {
  reportFindings(Ctx, Name, checker::runCheckers(Ctx.svfg(), A, KindMask),
                 KindMask, GT, CG, AuxPrecision);
}

/// The spec-engine analogue of \c reportFindings: prints each finding once
/// with its spec name and witness verdict, fills \p CG with the same
/// per-kind counters the legacy path emits (computed over the projected
/// legacy finding shape so the numbers are directly comparable), extends
/// \p TG (the "taint" stats-json group, pre-seeded with the engine's
/// counters) with the verdict tally, and writes --findings-json when
/// requested. Returns false only when that write failed.
bool reportTaintFindings(const core::AnalysisContext &Ctx,
                         const std::string &Name, const Options &Opts,
                         const std::vector<taint::TaintSpec> &Specs,
                         std::vector<taint::TaintFinding> TFs,
                         uint32_t ReportMask, const checker::GroundTruth *GT,
                         StatGroup &CG, StatGroup &TG, bool AuxPrecision) {
  if (AuxPrecision)
    for (taint::TaintFinding &TF : TFs)
      TF.F.AuxPrecision = true;
  uint64_t Verified = 0, Unverifiable = 0;
  for (const taint::TaintFinding &TF : TFs) {
    Verified += TF.V == taint::Verdict::Verified;
    Unverifiable += TF.V == taint::Verdict::Unverifiable;
  }
  std::printf("--- %s: %zu spec finding(s) from %zu spec(s), %llu verified, "
              "%llu unverifiable%s ---\n",
              Name.c_str(), TFs.size(), Specs.size(),
              (unsigned long long)Verified, (unsigned long long)Unverifiable,
              AuxPrecision ? " [aux-precision]" : "");
  for (const taint::TaintFinding &TF : TFs) {
    std::printf("  %s [spec %s, %s, witness %zu node(s)]\n",
                checker::printFinding(Ctx.module(), TF.F).c_str(),
                Specs[TF.Spec].Name.c_str(), taint::verdictName(TF.V),
                TF.Witness.size());
    if (!TF.Note.empty())
      std::printf("    note: %s\n", TF.Note.c_str());
  }

  // Legacy-compatible counters and ground-truth scoring over the projected
  // finding shape (sorted, deduplicated across specs — what runCheckers
  // would have reported).
  std::vector<checker::Finding> Projected = taint::toCheckerFindings(TFs);
  uint32_t PerKind[checker::NumCheckKinds] = {};
  for (const checker::Finding &F : Projected)
    ++PerKind[static_cast<uint32_t>(F.Kind)];
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(ReportMask & (1u << K)))
      continue;
    const char *Flag =
        checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    CG.get(std::string(Flag) + "_findings") = PerKind[K];
  }
  if (GT) {
    auto Scores = checker::scoreFindings(Projected, *GT);
    std::printf("  vs ground truth:");
    for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
      if (!(ReportMask & (1u << K)))
        continue;
      const checker::CheckScore &S = Scores[K];
      const char *Flag =
          checker::checkKindFlag(static_cast<checker::CheckKind>(K));
      std::printf(" %s TP=%u FP=%u FN=%u", Flag, S.TP, S.FP, S.FN);
      CG.get(std::string(Flag) + "_tp") = S.TP;
      CG.get(std::string(Flag) + "_fp") = S.FP;
      CG.get(std::string(Flag) + "_fn") = S.FN;
    }
    std::printf("\n");
  }

  TG.get("verified") = Verified;
  TG.get("unverifiable") = Unverifiable;

  if (Opts.FindingsJson.empty())
    return true;
  return writeOut(Opts.FindingsJson,
                  taint::findingsJson(Ctx.module(), Specs, TFs, Name));
}

/// The thin-client path: translate the parsed options into one wire
/// request, exchange it with the daemon, replay the daemon's Summary and
/// documents as if the run had happened here, and exit with the same code
/// a local run would have produced (docs/SERVICE.md).
int runConnected(const Options &Opts) {
  if (Opts.Health) {
    service::Response H;
    std::string Error;
    if (!service::requestHealth(Opts.Connect, H, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return ExitUnavailable;
    }
    std::fputs(H.StatsJson.c_str(), stdout);
    return service::statusExitCode(H.St);
  }

  service::AnalyzeRequest Req;
  Req.Analysis = Opts.Analysis;
  Req.Mode = Opts.Mode;
  Req.QueryTimeBudget = Opts.QueryTimeBudget;
  Req.QueryStepBudget = Opts.QueryStepBudget;
  Req.PtsRepr = Opts.PtsRepr;
  Req.Coalesce = Opts.Coalesce;
  Req.CheckMask = Opts.CheckMask;
  Req.AuxCallGraph = Opts.AuxCallGraph;
  Req.OVS = Opts.OVS;
  Req.Stats = Opts.Stats;
  Req.TimeBudget = Opts.TimeBudget;
  Req.MemBudget = Opts.MemBudget;
  Req.StepBudget = Opts.StepBudget;
  Req.Policy = Opts.Policy;
  Req.Deterministic = Opts.DeterministicStats;
  Req.WantStats = !Opts.StatsJson.empty();
  Req.WantFindings = !Opts.FindingsJson.empty();
  // Spec files are resolved client-side: the daemon sees either the
  // builtin set or the file's bytes inline, never a client-local path.
  if (Opts.CheckSpecs == "builtin") {
    Req.CheckSpecs = "builtin";
  } else if (!Opts.CheckSpecs.empty()) {
    std::ifstream In(Opts.CheckSpecs);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Opts.CheckSpecs.c_str());
      return ExitInput;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Req.CheckSpecs = "inline";
    Req.SpecText = Buffer.str();
  }
  // Forward the fault plan instead of arming locally: the daemon arms it
  // on the worker serving this request only (the fault matrix in
  // tests/service_identity.sh drives this end to end).
  if (const char *Fault = std::getenv("VSFS_FAULT_INJECT"))
    Req.Fault = Fault;
  // The module travels as text. A file's bytes go verbatim; a preset or
  // generated workload is printed — the same rendering --emit-ir writes.
  if (!Opts.InputFile.empty()) {
    std::ifstream In(Opts.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Opts.InputFile.c_str());
      return ExitInput;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Req.ModuleText = Buffer.str();
  } else {
    workload::GenConfig C;
    if (!Opts.BenchName.empty()) {
      workload::BenchSpec Spec;
      if (!workload::findBenchmark(Opts.BenchName, Spec)) {
        std::fprintf(stderr, "error: unknown benchmark '%s'\n",
                     Opts.BenchName.c_str());
        return ExitInput;
      }
      C = Spec.Config;
    } else {
      C.Seed = Opts.GenSeed;
    }
    Req.ModuleText = ir::printModule(*workload::generateProgram(C, nullptr));
  }

  service::Response Resp;
  std::string Error;
  if (!service::requestAnalyze(Opts.Connect, Req, Resp, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return ExitUnavailable;
  }
  std::fputs(Resp.Summary.c_str(), stdout);
  if (Resp.Cached)
    std::printf("(served from result cache)\n");
  if (!Resp.Error.empty())
    std::fprintf(stderr, "error: %s\n", Resp.Error.c_str());
  int Exit = service::statusExitCode(Resp.St);
  if (Exit == ExitOK) {
    bool WritesOk = true;
    if (!Opts.StatsJson.empty())
      WritesOk &= writeOut(Opts.StatsJson, Resp.StatsJson);
    if (!Opts.FindingsJson.empty())
      WritesOk &= writeOut(Opts.FindingsJson, Resp.FindingsJson);
    if (!WritesOk)
      return ExitInput;
  }
  return Exit;
}

int run(const Options &Opts) {
  adt::setPointsToRepr(Opts.PtsRepr);
  setDeterministicStats(Opts.DeterministicStats);

  // Resolve the taint spec set first: a bad spec set should fail before
  // any analysis work happens.
  const bool UseTaint = !Opts.CheckSpecs.empty();
  std::vector<taint::TaintSpec> Specs;
  if (UseTaint) {
    if (Opts.CheckSpecs == "builtin") {
      Specs = taint::builtinSpecs(Opts.CheckMask ? Opts.CheckMask
                                                 : checker::AllChecks);
    } else {
      std::ifstream In(Opts.CheckSpecs);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     Opts.CheckSpecs.c_str());
        return ExitInput;
      }
      std::ostringstream Buffer;
      Buffer << In.rdbuf();
      std::string Error;
      if (!taint::parseTaintSpecs(Buffer.str(), Specs, Error)) {
        std::fprintf(stderr, "error: %s: %s\n", Opts.CheckSpecs.c_str(),
                     Error.c_str());
        return ExitUsage;
      }
    }
  }
  // Which finding kinds the spec set can report — drives the per-kind
  // stats-json counters and ground-truth scoring columns.
  uint32_t ReportMask = 0;
  for (const taint::TaintSpec &S : Specs)
    ReportMask |= checker::checkBit(S.Kind);

  core::AnalysisContext Ctx;
  checker::GroundTruth GT;
  bool HaveGT = false;
  if (!Opts.InputFile.empty()) {
    std::ifstream In(Opts.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Opts.InputFile.c_str());
      return ExitInput;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    std::string Error;
    if (!Ctx.loadText(Buffer.str(), Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Opts.InputFile.c_str(),
                   Error.c_str());
      return ExitInput;
    }
  } else if (!Opts.BenchName.empty()) {
    workload::BenchSpec Spec;
    if (!workload::findBenchmark(Opts.BenchName, Spec)) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n",
                   Opts.BenchName.c_str());
      return ExitInput;
    }
    workload::GenConfig C = Spec.Config;
    C.InjectBugs = Opts.InjectBugs;
    Ctx.module() = std::move(
        *workload::generateProgram(C, Opts.InjectBugs ? &GT : nullptr));
    HaveGT = Opts.InjectBugs;
  } else {
    workload::GenConfig C;
    C.Seed = Opts.GenSeed;
    C.InjectBugs = Opts.InjectBugs;
    Ctx.module() = std::move(
        *workload::generateProgram(C, Opts.InjectBugs ? &GT : nullptr));
    HaveGT = Opts.InjectBugs;
  }

  if (!Opts.EmitIR.empty())
    return writeOut(Opts.EmitIR, ir::printModule(Ctx.module())) ? ExitOK
                                                                : ExitInput;
  if (Opts.PrintModule)
    std::printf("%s\n", ir::printModule(Ctx.module()).c_str());
  if (!Opts.DumpCFG.empty()) {
    ir::FunID F = Ctx.module().lookupFunction(Opts.DumpCFG);
    if (F == ir::InvalidFun) {
      std::fprintf(stderr, "error: no function '%s'\n", Opts.DumpCFG.c_str());
      return ExitInput;
    }
    std::fputs(core::dotCFG(Ctx.module(), F).c_str(), stdout);
  }

  // The budget exists when any limit is set *or* fault injection is armed
  // (an all-zero budget still polls, which is what lets an injected fault
  // surface without also configuring a limit).
  std::unique_ptr<ResourceBudget> Budget;
  if (Opts.TimeBudget > 0 || Opts.MemBudget != 0 || Opts.StepBudget != 0 ||
      FaultInjection::active()) {
    ResourceBudget::Limits L;
    L.TimeBudgetSeconds = Opts.TimeBudget;
    L.MemBudgetBytes = Opts.MemBudget;
    L.StepBudget = Opts.StepBudget;
    Budget = std::make_unique<ResourceBudget>(L);
  }

  andersen::Andersen::Options AuxOpts;
  AuxOpts.OfflineSubstitution = Opts.OVS;
  bool Built =
      Ctx.build(/*ConnectAuxIndirectCalls=*/Opts.AuxCallGraph, AuxOpts,
                Budget.get());
  if (Built)
    std::printf("pipeline: andersen %.3fs, memssa %.3fs, svfg %.3fs "
                "(%u nodes, %llu direct, %llu indirect edges)\n",
                Ctx.andersenSeconds(), Ctx.memSSASeconds(),
                Ctx.svfgSeconds(), Ctx.svfg().numNodes(),
                (unsigned long long)Ctx.svfg().numDirectEdges(),
                (unsigned long long)Ctx.svfg().numIndirectEdges());
  else
    std::printf("pipeline: cancelled during %s (%s)\n",
                Budget ? Budget->phase() : "build",
                terminationName(Ctx.buildTermination()));

  // Pre-solve transfer-equivalence coalescing (docs/COALESCING.md): must
  // run before any solver, slicer or query engine sees the graph.
  if (Built && Opts.Coalesce) {
    Ctx.coalesce();
    const svfg::CoalesceMap &CM = *Ctx.coalesceMap();
    std::printf("coalesce: %u classes, %llu nodes + %llu edges removed "
                "(%llu forward, %llu same-in, %llu refine iters, %.3fs)\n",
                CM.numClasses(), (unsigned long long)CM.CoalescedNodes,
                (unsigned long long)CM.EdgesRemoved,
                (unsigned long long)CM.ForwardMembers,
                (unsigned long long)CM.SameInMembers,
                (unsigned long long)CM.RefineIterations,
                Ctx.coalesceSeconds());
  }

  // Lint after the pipeline build so the pointer-aware lints can consult
  // the auxiliary analysis; a cancelled build degrades to the structural
  // lints only.
  if (Opts.Lint) {
    std::vector<std::string> Warnings =
        Built ? ir::lintModule(Ctx.module(),
                               [&Ctx](ir::VarID V) {
                                 return &Ctx.andersen().ptsOfVar(V);
                               })
              : ir::lintModule(Ctx.module());
    std::printf("--- lint: %zu warning(s) ---\n", Warnings.size());
    for (const std::string &W : Warnings)
      std::printf("  warning: %s\n", W.c_str());
  }

  const core::AnalysisRunner &Runner = core::AnalysisRunner::registry();
  std::vector<std::string> Names;
  if (Opts.Analysis == "all") {
    for (const auto &E : Runner.entries())
      Names.push_back(E.Name);
  } else {
    Names.push_back(Runner.find(Opts.Analysis)->Name);
  }

  core::SolverOptions SolverOpts;
  SolverOpts.OnTheFlyCallGraph = !Opts.AuxCallGraph;
  SolverOpts.Budget = Budget.get();
  SolverOpts.Policy = Opts.Policy;

  const andersen::CallGraph *FinalCG = &Ctx.andersen().callGraph();
  std::vector<core::AnalysisRunner::RunResult> Results;
  std::vector<std::vector<StatGroup>> CheckerGroups;
  bool WritesOk = true;

  if (!Built) {
    // The pipeline itself ran out of budget. Apply the degradation ladder
    // here, where the solvers can no longer run: degrade substitutes the
    // auxiliary result (valid only when the auxiliary analysis finished —
    // a cancelled aux has no sound stand-in, so degrade falls back to
    // fail), partial exposes whatever monotone aux state exists, and fail
    // reports the exhaustion without a result.
    Termination BS = Ctx.buildTermination();
    bool AuxDone =
        Ctx.andersen().termination() == Termination::Completed;
    bool Degrade =
        Opts.Policy == core::SolverOptions::OnExhaustion::Degrade && AuxDone;
    bool Partial =
        Opts.Policy == core::SolverOptions::OnExhaustion::Partial;
    if (!Degrade && !Partial) {
      std::fprintf(stderr,
                   "error: budget exhausted (%s) during pipeline build\n",
                   terminationName(BS));
      return BS == Termination::Fault ? ExitFault : ExitExhausted;
    }
    for (const std::string &Name : Names) {
      core::AnalysisRunner::RunResult R;
      R.Name = Runner.find(Name)->Name;
      R.Status = BS;
      R.Degraded = Degrade;
      R.Partial = Partial;
      R.Analysis = std::make_unique<core::AndersenResult>(Ctx.andersen());
      std::printf("%s: pipeline budget exhausted (%s); %s\n", R.Name.c_str(),
                  terminationName(BS),
                  Degrade ? "degraded to the auxiliary (ander) result"
                          : "exposing partial (under-approximate) auxiliary "
                            "state");
      if (Opts.PrintPts)
        printPts(Ctx.module(), *R.Analysis, R.Name.c_str());
      if (Opts.Stats)
        std::printf("%s", core::statsText(R).c_str());
      if (Opts.CheckMask || UseTaint)
        std::printf("--- %s: checkers skipped (no SVFG: pipeline "
                    "cancelled) ---\n",
                    R.Name.c_str());
      CheckerGroups.push_back({StatGroup("checkers")});
      Results.push_back(std::move(R));
    }
  }

  if (Built && Opts.Mode == "demand") {
    // Demand mode: no whole-program solve. The checkers drive a query
    // engine that solves a backward slice per candidate sink; answers are
    // bit-identical to the exhaustive analysis (docs/QUERIES.md).
    query::QueryEngine::Options QO;
    QO.Solver = Names.front();
    QO.OnTheFlyCallGraph = !Opts.AuxCallGraph;
    QO.QueryLimits.TimeBudgetSeconds = Opts.QueryTimeBudget;
    QO.QueryLimits.StepBudget = Opts.QueryStepBudget;
    query::QueryEngine Engine(Ctx, QO);

    std::vector<checker::Finding> Findings;
    std::vector<taint::TaintFinding> TaintFindings;
    StatGroup TG("taint");
    if (UseTaint) {
      TaintFindings = query::runTaintDemand(Engine, Specs, &TG);
      // Replay witnesses against the engine's oracle view *before*
      // takeRunResult() moves the scoped solver out (after which the
      // oracle would answer at auxiliary precision).
      taint::WitnessVerifier(Ctx.svfg(), Engine)
          .verifyAll(Specs, TaintFindings);
    } else {
      Findings = query::runCheckersDemand(Engine, Opts.CheckMask);
    }
    bool Degraded = Engine.degraded();
    StatGroup QueryStats = Engine.stats();
    core::AnalysisRunner::RunResult R = Engine.takeRunResult();

    std::printf("%s (demand): %llu queries (%llu slice-cache hits, %llu "
                "solves), scope %llu of %llu SVFG nodes, solved in %.3fs\n",
                R.Name.c_str(),
                (unsigned long long)QueryStats.lookup("queries"),
                (unsigned long long)QueryStats.lookup("slice-cache-hits"),
                (unsigned long long)QueryStats.lookup("solves"),
                (unsigned long long)QueryStats.lookup("scope-nodes"),
                (unsigned long long)QueryStats.lookup("svfg-nodes"),
                R.SolveSeconds);
    if (QueryStats.lookup("degraded-queries"))
      std::printf("%s (demand): %llu query(ies) exhausted their budget "
                  "(%s)%s\n",
                  R.Name.c_str(),
                  (unsigned long long)QueryStats.lookup("degraded-queries"),
                  terminationName(R.Status),
                  Degraded ? "; final answers at auxiliary precision" : "");

    if (Opts.PrintPts)
      printPts(Ctx.module(), *R.Analysis, R.Name.c_str());
    if (Opts.Stats) {
      std::printf("%s", QueryStats.toString().c_str());
      std::printf("%s", core::statsText(R).c_str());
    }
    StatGroup CG("checkers");
    if (UseTaint) {
      WritesOk &= reportTaintFindings(Ctx, R.Name + " (demand)", Opts, Specs,
                                      std::move(TaintFindings), ReportMask,
                                      HaveGT ? &GT : nullptr, CG, TG,
                                      Degraded);
      CheckerGroups.push_back(
          {std::move(CG), std::move(TG), std::move(QueryStats)});
    } else {
      reportFindings(Ctx, R.Name + " (demand)", std::move(Findings),
                     Opts.CheckMask, HaveGT ? &GT : nullptr, CG, Degraded);
      CheckerGroups.push_back({std::move(CG), std::move(QueryStats)});
    }
    // The scoped solver's call graph only covers in-scope discoveries, so
    // the auxiliary graph stays the one worth dumping.
    Results.push_back(std::move(R));
  }

  for (const std::string &Name : Names) {
    if (!Built || Opts.Mode == "demand")
      break; // Degraded/partial or demand results were produced above.
    core::AnalysisRunner::RunResult R = Runner.run(Ctx, Name, SolverOpts);
    if (R.Status != Termination::Completed && !R.Degraded && !R.Partial) {
      // --on-exhaustion=fail (or degrade without a completed auxiliary
      // target): report and exit without printing any result.
      std::fprintf(stderr, "error: %s: budget exhausted (%s)\n",
                   R.Name.c_str(), terminationName(R.Status));
      return R.Status == Termination::Fault ? ExitFault : ExitExhausted;
    }
    const core::PointerAnalysisResult &A = *R.Analysis;

    if (R.Degraded)
      std::printf("%s: budget exhausted (%s) after %.3fs; degraded to the "
                  "auxiliary (ander) result\n",
                  R.Name.c_str(), terminationName(R.Status), R.SolveSeconds);
    else if (R.Partial)
      std::printf("%s: budget exhausted (%s) after %.3fs; exposing partial "
                  "(under-approximate) state, %s of analysis state\n",
                  R.Name.c_str(), terminationName(R.Status), R.SolveSeconds,
                  formatBytes(A.footprintBytes()).c_str());
    else if (const auto *VSFS =
                 dynamic_cast<const core::VersionedFlowSensitive *>(&A))
      std::printf("%s: solved in %.3fs (versioning %.3fs), %s of analysis "
                  "state\n",
                  R.Name.c_str(), R.SolveSeconds, VSFS->versioningSeconds(),
                  formatBytes(A.footprintBytes()).c_str());
    else if (R.Name == "ander")
      std::printf("%s: solved in %.3fs\n", R.Name.c_str(),
                  Ctx.andersenSeconds());
    else
      std::printf("%s: solved in %.3fs, %s of analysis state\n",
                  R.Name.c_str(), R.SolveSeconds,
                  formatBytes(A.footprintBytes()).c_str());

    if (Opts.PrintPts)
      printPts(Ctx.module(), A, R.Name.c_str());
    if (Opts.Stats)
      std::printf("%s", core::statsText(R).c_str());
    if (Opts.PrintVersions)
      if (const auto *VSFS =
              dynamic_cast<const core::VersionedFlowSensitive *>(&A))
        printVersions(Ctx.module(), *VSFS);
    StatGroup CG("checkers");
    if (UseTaint) {
      taint::TaintEngine TE(Ctx.svfg(), A);
      std::vector<taint::TaintFinding> TFs = TE.run(Specs);
      taint::WitnessVerifier(Ctx.svfg(), A).verifyAll(Specs, TFs);
      StatGroup TG = TE.stats();
      WritesOk &= reportTaintFindings(Ctx, R.Name, Opts, Specs,
                                      std::move(TFs), ReportMask,
                                      HaveGT ? &GT : nullptr, CG, TG,
                                      /*AuxPrecision=*/R.Degraded);
      CheckerGroups.push_back({std::move(CG), std::move(TG)});
    } else {
      if (Opts.CheckMask)
        runCheckersFor(Ctx, R.Name, A, Opts.CheckMask,
                       HaveGT ? &GT : nullptr, CG,
                       /*AuxPrecision=*/R.Degraded);
      CheckerGroups.push_back({std::move(CG)});
    }
    // The most precise call graph wins the dump: the flow-sensitive
    // solvers refine the auxiliary one (a degraded run refines nothing).
    if (!R.Degraded && !R.Partial && (R.Name == "sfs" || R.Name == "vsfs"))
      FinalCG = &A.callGraph();
    Results.push_back(std::move(R));
  }

  if (!Opts.DumpCallGraph.empty())
    WritesOk &= writeOut(Opts.DumpCallGraph,
                         core::dotCallGraph(Ctx.module(), *FinalCG));
  if (!Opts.DumpSVFG.empty()) {
    if (Ctx.isBuilt())
      WritesOk &= writeOut(Opts.DumpSVFG,
                           core::dotSVFG(Ctx.svfg(), /*MaxNodes=*/500));
    else
      std::printf("dump-svfg skipped (no SVFG: pipeline cancelled)\n");
  }
  if (!Opts.StatsJson.empty())
    WritesOk &= writeOut(
        Opts.StatsJson,
        core::statsJson(Ctx, Results,
                        (Opts.CheckMask || UseTaint) ? &CheckerGroups
                                                     : nullptr,
                        Budget.get(), Opts.Mode));

  std::printf("peak RSS: %s\n", formatBytes(peakRSSBytes()).c_str());
  return WritesOk ? ExitOK : ExitInput;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  switch (parseArgs(Argc, Argv, Opts)) {
  case ParseResult::Help:
    return ExitOK;
  case ParseResult::Error:
    return ExitUsage;
  case ParseResult::Run:
    break;
  }
  if (Opts.ListAnalyses) {
    listAnalyses();
    return ExitOK;
  }
  if (Opts.Analysis != "all" &&
      !core::AnalysisRunner::registry().find(Opts.Analysis)) {
    std::fprintf(stderr, "error: unknown analysis '%s' (known: %s | all)\n",
                 Opts.Analysis.c_str(),
                 core::AnalysisRunner::registry().namesString().c_str());
    return ExitUsage;
  }
  if (Opts.Mode == "demand" &&
      !query::QueryEngine::supportsSolver(Opts.Analysis)) {
    std::fprintf(stderr,
                 "error: --mode=demand cannot slice for '%s' (want sfs | "
                 "vsfs | ander)\n",
                 Opts.Analysis.c_str());
    return ExitUsage;
  }
  // Deterministic fault injection for the robustness tests: a malformed
  // spec is a usage error, not something to silently ignore.
  if (!FaultInjection::get().armFromEnv()) {
    std::fprintf(stderr,
                 "error: bad VSFS_FAULT_INJECT spec '%s' (want "
                 "kind@N[:phase])\n",
                 std::getenv("VSFS_FAULT_INJECT"));
    return ExitUsage;
  }
  if (!Opts.Connect.empty()) {
    FaultInjection::get().disarm(); // Forwarded over the wire instead.
    return runConnected(Opts);
  }
  return run(Opts);
}
