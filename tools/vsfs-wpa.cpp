//===- vsfs-wpa.cpp - Whole-program analysis driver -------------*- C++ -*-===//
///
/// The command-line driver, mirroring SVF's `wpa` tool that the paper's
/// artifact benchmarks with (`wpa -ander / -fspta / -vfspta prog.bc`):
///
///   vsfs-wpa [options] program.ir
///   vsfs-wpa --bench lynx --analysis=vsfs --stats
///   vsfs-wpa --gen 42 --analysis=all --print-pts
///   vsfs-wpa --bench du --analysis=sfs --stats-json=du.json
///
/// Inputs: a textual-IR file, a named benchmark preset (--bench), or a
/// generated program (--gen SEED). Analyses come from the
/// core::AnalysisRunner registry (ander | iter | sfs | vsfs | all); the
/// driver itself only parses flags and formats output — the build→solve
/// sequence lives in the registry, shared with the benches and tests.
///
//===----------------------------------------------------------------------===//

#include "adt/PointsToCache.h"
#include "checker/Checker.h"
#include "core/AnalysisContext.h"
#include "core/AnalysisRunner.h"
#include "core/DotExport.h"
#include "core/VersionedFlowSensitive.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Format.h"
#include "support/MemUsage.h"
#include "support/Timer.h"
#include "workload/BenchmarkSuite.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

using namespace vsfs;

namespace {

struct Options {
  std::string InputFile;
  std::string BenchName;
  uint64_t GenSeed = 0;
  bool UseGen = false;
  std::string Analysis = "vsfs";
  adt::PtsRepr PtsRepr = adt::PtsRepr::SBV;
  uint32_t CheckMask = 0; ///< Checkers to run; 0 = none.
  bool InjectBugs = false;
  bool Lint = false;
  bool ListAnalyses = false;
  bool AuxCallGraph = false;
  bool OVS = false;
  bool PrintPts = false;
  bool PrintVersions = false;
  bool PrintModule = false;
  bool Stats = false;
  std::string StatsJson; // "-" = stdout
  std::string DumpCallGraph; // "-" = stdout
  std::string DumpSVFG;
  std::string DumpCFG; // Function name; printed to stdout.
};

void usage(const char *Prog) {
  std::printf(
      "usage: %s [options] [program.ir]\n"
      "\n"
      "input (exactly one):\n"
      "  program.ir            textual IR file\n"
      "  --bench NAME          a named benchmark preset (see bench_table2)\n"
      "  --gen SEED            a generated workload\n"
      "\n"
      "options:\n"
      "  --analysis=KIND       %s | all  (default vsfs)\n"
      "  --pts-repr=REPR       points-to set representation:\n"
      "                        sbv (one bit vector per set, the default) |\n"
      "                        persistent (hash-consed, memoised algebra)\n"
      "  --check=KINDS         run bug checkers on each analysis's result:\n"
      "                        comma list of uaf | dfree | null | leak | "
      "all\n"
      "  --inject-bugs         seed the generated program (--gen/--bench)\n"
      "                        with known bug patterns; checker findings "
      "are\n"
      "                        then scored as TP/FP/FN against ground "
      "truth\n"
      "  --lint                print non-fatal IR lint warnings\n"
      "  --list-analyses       print the analysis registry and exit\n"
      "  --aux-call-graph      reuse Andersen's call graph instead of\n"
      "                        resolving indirect calls on the fly\n"
      "  --ovs                 offline variable substitution for the\n"
      "                        auxiliary analysis (precision-neutral)\n"
      "  --print-pts           print each top-level variable's points-to "
      "set\n"
      "  --print-versions      print the version each load consumes and "
      "the\n"
      "                        version-sharing summary (vsfs only)\n"
      "  --print-module        print the parsed module\n"
      "  --stats               print analysis statistics (aligned text)\n"
      "  --stats-json[=F]      write pipeline + analysis statistics as "
      "JSON\n"
      "  --dump-callgraph[=F]  write the resolved call graph as dot\n"
      "  --dump-svfg[=F]       write the SVFG as dot (capped at 500 nodes)\n"
      "  --dump-cfg=FUNC       write FUNC's CFG as dot to stdout\n",
      Prog, core::AnalysisRunner::registry().namesString().c_str());
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return false;
    } else if (Arg == "--bench" && I + 1 < Argc) {
      Opts.BenchName = Argv[++I];
    } else if (Arg == "--gen" && I + 1 < Argc) {
      Opts.UseGen = true;
      Opts.GenSeed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (const char *V = Value("--analysis=")) {
      Opts.Analysis = V;
    } else if (const char *VR = Value("--pts-repr=")) {
      if (!adt::parsePtsRepr(VR, Opts.PtsRepr)) {
        std::fprintf(stderr,
                     "error: bad --pts-repr '%s' (want sbv | persistent)\n",
                     VR);
        return false;
      }
    } else if (const char *VC = Value("--check=")) {
      if (!checker::parseCheckKinds(VC, Opts.CheckMask)) {
        std::fprintf(stderr,
                     "error: bad --check spec '%s' (want a comma list of "
                     "uaf | dfree | null | leak | all)\n",
                     VC);
        return false;
      }
    } else if (Arg == "--check") {
      Opts.CheckMask = checker::AllChecks;
    } else if (Arg == "--inject-bugs") {
      Opts.InjectBugs = true;
    } else if (Arg == "--lint") {
      Opts.Lint = true;
    } else if (Arg == "--list-analyses") {
      Opts.ListAnalyses = true;
    } else if (Arg == "--aux-call-graph") {
      Opts.AuxCallGraph = true;
    } else if (Arg == "--ovs") {
      Opts.OVS = true;
    } else if (Arg == "--print-pts") {
      Opts.PrintPts = true;
    } else if (Arg == "--print-versions") {
      Opts.PrintVersions = true;
    } else if (Arg == "--print-module") {
      Opts.PrintModule = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--stats-json") {
      Opts.StatsJson = "-";
    } else if (const char *VJ = Value("--stats-json=")) {
      Opts.StatsJson = VJ;
    } else if (Arg == "--dump-callgraph") {
      Opts.DumpCallGraph = "-";
    } else if (const char *V2 = Value("--dump-callgraph=")) {
      Opts.DumpCallGraph = V2;
    } else if (Arg == "--dump-svfg") {
      Opts.DumpSVFG = "-";
    } else if (const char *V3 = Value("--dump-svfg=")) {
      Opts.DumpSVFG = V3;
    } else if (const char *V4 = Value("--dump-cfg=")) {
      Opts.DumpCFG = V4;
    } else if (!Arg.empty() && Arg[0] != '-') {
      Opts.InputFile = Arg;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.ListAnalyses)
    return true; // Needs no input.
  int Inputs = !Opts.InputFile.empty();
  Inputs += !Opts.BenchName.empty();
  Inputs += Opts.UseGen;
  if (Inputs != 1) {
    usage(Argv[0]);
    return false;
  }
  if (Opts.InjectBugs && !Opts.UseGen && Opts.BenchName.empty()) {
    std::fprintf(stderr, "error: --inject-bugs needs --gen or --bench\n");
    return false;
  }
  return true;
}

bool writeOut(const std::string &Target, const std::string &Content) {
  if (Target == "-") {
    std::fputs(Content.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Target);
  if (!(Out << Content)) {
    std::fprintf(stderr, "error: cannot write %s\n", Target.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", Target.c_str(), Content.size());
  return true;
}

void printPts(const ir::Module &M, const core::PointerAnalysisResult &A,
              const char *Banner) {
  std::printf("--- points-to sets (%s) ---\n", Banner);
  for (ir::VarID V = 0; V < M.symbols().numVars(); ++V) {
    const PointsTo &Pts = A.ptsOfVar(V);
    if (Pts.empty())
      continue;
    std::string Line = ir::printVar(M, V) + " -> {";
    bool First = true;
    for (uint32_t O : Pts) {
      Line += (First ? " " : ", ") + M.symbols().object(O).Name;
      First = false;
    }
    std::printf("%s }\n", Line.c_str());
  }
}

void printVersions(const ir::Module &M,
                   const core::VersionedFlowSensitive &VSFS) {
  // Which version each load consumes, and how often versions are shared —
  // the sharing is exactly what VSFS saves storage with.
  std::printf("--- consumed versions at loads ---\n");
  std::unordered_map<core::Version, uint32_t> Consumers;
  for (ir::InstID I = 0; I < M.numInstructions(); ++I) {
    if (M.inst(I).Kind != ir::InstKind::Load)
      continue;
    for (uint32_t O : VSFS.ptsOfVar(M.inst(I).loadPtr())) {
      if (M.symbols().isFunctionObject(O))
        continue;
      core::Version V = VSFS.versioning().consume(I, O);
      ++Consumers[V];
      std::printf("  %-28s %s: v%u%s\n", ir::printInst(M, I).c_str(),
                  M.symbols().object(O).Name.c_str(), V,
                  VSFS.versioning().isEpsilon(V) ? " (eps)" : "");
    }
  }
  uint32_t Shared = 0;
  for (const auto &[V, N] : Consumers)
    if (N > 1)
      ++Shared;
  std::printf("  %zu distinct versions consumed; %u shared by more "
              "than one load\n",
              Consumers.size(), Shared);
}

void listAnalyses() {
  std::printf("registered analyses:\n");
  for (const auto &E : core::AnalysisRunner::registry().entries()) {
    std::string Names = E.Name;
    for (const std::string &A : E.Aliases)
      Names += " | " + A;
    std::printf("  %-14s %s\n", Names.c_str(), E.Description.c_str());
  }
}

/// Runs the checkers over one solved analysis: prints the findings, scores
/// them against \p GT when available, and fills \p CG with the counters
/// that end up in --stats-json.
void runCheckersFor(const core::AnalysisContext &Ctx, const std::string &Name,
                    const core::PointerAnalysisResult &A, uint32_t KindMask,
                    const checker::GroundTruth *GT, StatGroup &CG) {
  std::vector<checker::Finding> Findings =
      checker::runCheckers(Ctx.svfg(), A, KindMask);
  std::printf("--- %s: %zu checker finding(s) ---\n", Name.c_str(),
              Findings.size());
  for (const checker::Finding &F : Findings)
    std::printf("  %s\n", checker::printFinding(Ctx.module(), F).c_str());

  uint32_t PerKind[checker::NumCheckKinds] = {};
  for (const checker::Finding &F : Findings)
    ++PerKind[static_cast<uint32_t>(F.Kind)];
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(KindMask & (1u << K)))
      continue;
    const char *Flag = checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    CG.get(std::string(Flag) + "_findings") = PerKind[K];
  }

  if (!GT)
    return;
  auto Scores = checker::scoreFindings(Findings, *GT);
  std::printf("  vs ground truth:");
  for (uint32_t K = 0; K < checker::NumCheckKinds; ++K) {
    if (!(KindMask & (1u << K)))
      continue;
    const checker::CheckScore &S = Scores[K];
    const char *Flag = checker::checkKindFlag(static_cast<checker::CheckKind>(K));
    std::printf(" %s TP=%u FP=%u FN=%u", Flag, S.TP, S.FP, S.FN);
    CG.get(std::string(Flag) + "_tp") = S.TP;
    CG.get(std::string(Flag) + "_fp") = S.FP;
    CG.get(std::string(Flag) + "_fn") = S.FN;
  }
  std::printf("\n");
}

int run(const Options &Opts) {
  adt::setPointsToRepr(Opts.PtsRepr);
  core::AnalysisContext Ctx;
  checker::GroundTruth GT;
  bool HaveGT = false;
  if (!Opts.InputFile.empty()) {
    std::ifstream In(Opts.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Opts.InputFile.c_str());
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    std::string Error;
    if (!Ctx.loadText(Buffer.str(), Error)) {
      std::fprintf(stderr, "error: %s: %s\n", Opts.InputFile.c_str(),
                   Error.c_str());
      return 1;
    }
  } else if (!Opts.BenchName.empty()) {
    workload::BenchSpec Spec;
    if (!workload::findBenchmark(Opts.BenchName, Spec)) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n",
                   Opts.BenchName.c_str());
      return 1;
    }
    workload::GenConfig C = Spec.Config;
    C.InjectBugs = Opts.InjectBugs;
    Ctx.module() = std::move(
        *workload::generateProgram(C, Opts.InjectBugs ? &GT : nullptr));
    HaveGT = Opts.InjectBugs;
  } else {
    workload::GenConfig C;
    C.Seed = Opts.GenSeed;
    C.InjectBugs = Opts.InjectBugs;
    Ctx.module() = std::move(
        *workload::generateProgram(C, Opts.InjectBugs ? &GT : nullptr));
    HaveGT = Opts.InjectBugs;
  }

  if (Opts.Lint) {
    std::vector<std::string> Warnings = ir::lintModule(Ctx.module());
    std::printf("--- lint: %zu warning(s) ---\n", Warnings.size());
    for (const std::string &W : Warnings)
      std::printf("  warning: %s\n", W.c_str());
  }

  if (Opts.PrintModule)
    std::printf("%s\n", ir::printModule(Ctx.module()).c_str());
  if (!Opts.DumpCFG.empty()) {
    ir::FunID F = Ctx.module().lookupFunction(Opts.DumpCFG);
    if (F == ir::InvalidFun) {
      std::fprintf(stderr, "error: no function '%s'\n", Opts.DumpCFG.c_str());
      return 1;
    }
    std::fputs(core::dotCFG(Ctx.module(), F).c_str(), stdout);
  }

  andersen::Andersen::Options AuxOpts;
  AuxOpts.OfflineSubstitution = Opts.OVS;
  Ctx.build(/*ConnectAuxIndirectCalls=*/Opts.AuxCallGraph, AuxOpts);
  std::printf("pipeline: andersen %.3fs, memssa %.3fs, svfg %.3fs "
              "(%u nodes, %llu direct, %llu indirect edges)\n",
              Ctx.andersenSeconds(), Ctx.memSSASeconds(), Ctx.svfgSeconds(),
              Ctx.svfg().numNodes(),
              (unsigned long long)Ctx.svfg().numDirectEdges(),
              (unsigned long long)Ctx.svfg().numIndirectEdges());

  const core::AnalysisRunner &Runner = core::AnalysisRunner::registry();
  std::vector<std::string> Names;
  if (Opts.Analysis == "all") {
    for (const auto &E : Runner.entries())
      Names.push_back(E.Name);
  } else {
    Names.push_back(Runner.find(Opts.Analysis)->Name);
  }

  core::SolverOptions SolverOpts;
  SolverOpts.OnTheFlyCallGraph = !Opts.AuxCallGraph;

  const andersen::CallGraph *FinalCG = &Ctx.andersen().callGraph();
  std::vector<core::AnalysisRunner::RunResult> Results;
  std::vector<StatGroup> CheckerGroups;
  for (const std::string &Name : Names) {
    core::AnalysisRunner::RunResult R = Runner.run(Ctx, Name, SolverOpts);
    const core::PointerAnalysisResult &A = *R.Analysis;

    if (const auto *VSFS =
            dynamic_cast<const core::VersionedFlowSensitive *>(&A))
      std::printf("%s: solved in %.3fs (versioning %.3fs), %s of analysis "
                  "state\n",
                  R.Name.c_str(), R.SolveSeconds, VSFS->versioningSeconds(),
                  formatBytes(A.footprintBytes()).c_str());
    else if (R.Name == "ander")
      std::printf("%s: solved in %.3fs\n", R.Name.c_str(),
                  Ctx.andersenSeconds());
    else
      std::printf("%s: solved in %.3fs, %s of analysis state\n",
                  R.Name.c_str(), R.SolveSeconds,
                  formatBytes(A.footprintBytes()).c_str());

    if (Opts.PrintPts)
      printPts(Ctx.module(), A, R.Name.c_str());
    if (Opts.Stats)
      std::printf("%s", core::statsText(R).c_str());
    if (Opts.PrintVersions)
      if (const auto *VSFS =
              dynamic_cast<const core::VersionedFlowSensitive *>(&A))
        printVersions(Ctx.module(), *VSFS);
    StatGroup CG("checkers");
    if (Opts.CheckMask)
      runCheckersFor(Ctx, R.Name, A, Opts.CheckMask, HaveGT ? &GT : nullptr,
                     CG);
    CheckerGroups.push_back(std::move(CG));
    // The most precise call graph wins the dump: the flow-sensitive
    // solvers refine the auxiliary one.
    if (R.Name == "sfs" || R.Name == "vsfs")
      FinalCG = &A.callGraph();
    Results.push_back(std::move(R));
  }

  bool WritesOk = true;
  if (!Opts.DumpCallGraph.empty())
    WritesOk &= writeOut(Opts.DumpCallGraph,
                         core::dotCallGraph(Ctx.module(), *FinalCG));
  if (!Opts.DumpSVFG.empty())
    WritesOk &= writeOut(Opts.DumpSVFG,
                         core::dotSVFG(Ctx.svfg(), /*MaxNodes=*/500));
  if (!Opts.StatsJson.empty())
    WritesOk &= writeOut(
        Opts.StatsJson,
        core::statsJson(Ctx, Results,
                        Opts.CheckMask ? &CheckerGroups : nullptr));

  std::printf("peak RSS: %s\n", formatBytes(peakRSSBytes()).c_str());
  return WritesOk ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;
  if (Opts.ListAnalyses) {
    listAnalyses();
    return 0;
  }
  if (Opts.Analysis != "all" &&
      !core::AnalysisRunner::registry().find(Opts.Analysis)) {
    std::fprintf(stderr, "error: unknown analysis '%s' (known: %s | all)\n",
                 Opts.Analysis.c_str(),
                 core::AnalysisRunner::registry().namesString().c_str());
    return 2;
  }
  return run(Opts);
}
