//===- vsfs-served.cpp - Fault-isolated analysis daemon ---------*- C++ -*-===//
///
/// The long-lived analysis service (docs/SERVICE.md):
///
///   vsfs-served --socket=/tmp/vsfs.sock --workers=4 &
///   vsfs-wpa --connect=/tmp/vsfs.sock --bench du --analysis=vsfs --stats
///   vsfs-wpa --connect=/tmp/vsfs.sock --health
///
/// One process serves many analysis requests: completed results come back
/// from a bounded LRU cache, misses run on a worker pool where every
/// request is its own isolated analysis universe with its own budget, and
/// a request that exhausts its budget or trips an injected fault fails
/// alone — the daemon and its other in-flight requests are untouched.
/// SIGTERM/SIGINT drain queued and in-flight work before exiting.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace vsfs;

namespace {

/// Signal → main-thread handoff. The handler only does async-signal-safe
/// work: flag the server and wake main() off its pipe read.
service::Server *ActiveServer = nullptr;
int SignalPipe[2] = {-1, -1};

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStop();
  char B = 's';
  (void)!::write(SignalPipe[1], &B, 1);
}

void usage(const char *Prog) {
  std::printf(
      "usage: %s --socket=PATH [options]\n"
      "\n"
      "The vsfs analysis daemon (docs/SERVICE.md). Serves vsfs-wpa\n"
      "--connect requests over a unix domain socket until SIGTERM/SIGINT,\n"
      "then drains queued and in-flight requests and exits 0.\n"
      "\n"
      "options:\n"
      "  --socket=PATH         unix socket to listen on (required)\n"
      "  --workers=N           worker threads (default 2)\n"
      "  --queue-cap=N         pending requests before shedding (default "
      "16)\n"
      "  --cache-entries=N     result-cache entry cap (default 256)\n"
      "  --cache-bytes=N       result-cache byte cap (default 256MiB)\n"
      "  --request-timeout=S   server-side wall-clock ceiling per request\n"
      "                        (cooperative, via the request's budget;\n"
      "                        default 0 = none)\n"
      "  --retry-after-ms=N    hint carried by shed responses (default "
      "100)\n",
      Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  service::Server::Config Cfg;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&Arg](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      if (Arg.compare(0, Len, Prefix) == 0)
        return Arg.c_str() + Len;
      return nullptr;
    };
    auto BadNumber = [&Arg](const char *V, const char *End) {
      if (End != V && !*End)
        return false;
      std::fprintf(stderr, "error: bad value in '%s'\n", Arg.c_str());
      return true;
    };
    char *End = nullptr;
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (const char *V = Value("--socket=")) {
      Cfg.SocketPath = V;
    } else if (const char *VW = Value("--workers=")) {
      Cfg.Workers = static_cast<uint32_t>(std::strtoul(VW, &End, 10));
      if (BadNumber(VW, End) || Cfg.Workers == 0)
        return 1;
    } else if (const char *VQ = Value("--queue-cap=")) {
      Cfg.QueueCap = static_cast<uint32_t>(std::strtoul(VQ, &End, 10));
      if (BadNumber(VQ, End))
        return 1;
    } else if (const char *VE = Value("--cache-entries=")) {
      Cfg.Cache.MaxEntries = std::strtoull(VE, &End, 10);
      if (BadNumber(VE, End))
        return 1;
    } else if (const char *VB = Value("--cache-bytes=")) {
      Cfg.Cache.MaxBytes = std::strtoull(VB, &End, 10);
      if (BadNumber(VB, End))
        return 1;
    } else if (const char *VT = Value("--request-timeout=")) {
      Cfg.RequestTimeoutSeconds = std::strtod(VT, &End);
      if (BadNumber(VT, End) || Cfg.RequestTimeoutSeconds < 0)
        return 1;
    } else if (const char *VR = Value("--retry-after-ms=")) {
      Cfg.RetryAfterMs = static_cast<uint32_t>(std::strtoul(VR, &End, 10));
      if (BadNumber(VR, End))
        return 1;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return 1;
    }
  }
  if (Cfg.SocketPath.empty()) {
    usage(Argv[0]);
    return 1;
  }

  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  service::Server Server(Cfg);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  ActiveServer = &Server;
  struct sigaction SA {};
  SA.sa_handler = onSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN); // A vanished client must not kill the daemon.

  std::printf("vsfs-served: listening on %s (%u workers, queue cap %u)\n",
              Cfg.SocketPath.c_str(), Cfg.Workers, Cfg.QueueCap);
  std::fflush(stdout); // Tests wait for this line through a pipe.

  char B;
  while (::read(SignalPipe[0], &B, 1) < 0 && errno == EINTR) {
  }
  std::printf("vsfs-served: draining\n");
  std::fflush(stdout);
  Server.stop(); // Queued and in-flight requests finish first.
  std::printf("%s", Server.healthJson().c_str());
  ActiveServer = nullptr;
  ::close(SignalPipe[0]);
  ::close(SignalPipe[1]);
  return 0;
}
